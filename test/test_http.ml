(* The HTTP front door: RQL parsing/printing (golden + qcheck round-trip),
   query compilation onto the relational planner, and the Httpd/Api stack
   end to end over a real TCP socket — JSON and XML view queries, SQL and
   view-DML endpoints firing triggers into SSE streams, Last-Event-ID
   replay across reconnects, admission control, long-poll deadlines, and
   malformed-request fuzz. *)

module Rql = Httpfront.Rql
module Httpd = Httpfront.Httpd
module Api = Httpfront.Api
module Runtime = Trigview.Runtime
module Value = Relkit.Value

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* --- RQL unit tests --- *)

let test_rql_golden () =
  let q =
    Rql.parse "eq(region,ASIA)&ge(price,100)&sort(-open_auctions,+name)&limit(0,50)"
  in
  (match q.Rql.filters with
  | [ a; b ] ->
    Alcotest.(check string) "field 1" "region" a.Rql.f_field;
    Alcotest.(check bool) "cmp 1" true (a.Rql.f_cmp = Rql.Eq);
    Alcotest.(check bool) "value 1" true (a.Rql.f_value = Value.String "ASIA");
    Alcotest.(check string) "field 2" "price" b.Rql.f_field;
    Alcotest.(check bool) "cmp 2" true (b.Rql.f_cmp = Rql.Ge);
    Alcotest.(check bool) "value 2 is int" true (b.Rql.f_value = Value.Int 100)
  | _ -> Alcotest.fail "expected two filters");
  Alcotest.(check bool) "sorts" true
    (q.Rql.sorts = [ ("open_auctions", true); ("name", false) ]);
  Alcotest.(check bool) "limit" true (q.Rql.limit = Some (0, 50));
  Alcotest.(check bool) "select empty" true (q.Rql.select = [])

let test_rql_values () =
  let v text = (List.hd (Rql.parse ("eq(f," ^ text ^ ")")).Rql.filters).Rql.f_value in
  Alcotest.(check bool) "int" true (v "42" = Value.Int 42);
  Alcotest.(check bool) "negative int" true (v "-7" = Value.Int (-7));
  Alcotest.(check bool) "float" true (v "1.5" = Value.Float 1.5);
  Alcotest.(check bool) "bool" true (v "true" = Value.Bool true);
  Alcotest.(check bool) "null" true (v "null" = Value.Null);
  Alcotest.(check bool) "string" true (v "ASIA" = Value.String "ASIA");
  Alcotest.(check bool) "forced string" true (v "string:123" = Value.String "123");
  Alcotest.(check bool) "pct-decoded comma" true (v "a%2Cb" = Value.String "a,b");
  Alcotest.(check bool) "pct-decoded space" true (v "CRT%2015" = Value.String "CRT 15")

let test_rql_errors () =
  let bad text =
    match Rql.parse text with
    | _ -> Alcotest.failf "expected parse error for %S" text
    | exception Rql.Error _ -> ()
  in
  bad "badop(x,y)";
  bad "eq(onlyone)";
  bad "eq(a,b,c)";
  bad "limit(a,b)";
  bad "limit(-1,5)";
  bad "eq(a,b";
  bad "eq(a,(b))";
  bad "sort()";
  bad "eq(a,%GG)";
  bad "noparens"

(* round-trip: print is canonical, parse . print = id *)
let rql_gen =
  let open QCheck.Gen in
  let field = oneofl [ "name"; "price"; "vid"; "a_b"; "x" ] in
  let value =
    oneof
      [ map (fun n -> Value.Int n) small_signed_int;
        map (fun b -> Value.Bool b) bool;
        return Value.Null;
        map (fun f -> Value.Float f) (float_range (-1000.) 1000.);
        map
          (fun s -> Value.String s)
          (oneofl [ "ASIA"; "CRT 15"; "a,b"; "x&y"; "(p)"; "string:z"; "-q"; "" ]);
      ]
  in
  let filter =
    map3
      (fun f c v -> { Rql.f_field = f; f_cmp = c; f_value = v })
      field
      (oneofl [ Rql.Eq; Rql.Ne; Rql.Lt; Rql.Le; Rql.Gt; Rql.Ge ])
      value
  in
  let sorts = list_size (int_bound 3) (pair field bool) in
  let limit = opt (pair (int_bound 100) (int_bound 100)) in
  let select = list_size (int_bound 3) field in
  map
    (fun ((filters, sorts), (limit, select)) ->
      { Rql.filters; sorts; limit; select })
    (pair (pair (list_size (int_bound 4) filter) sorts) (pair limit select))

let test_rql_roundtrip =
  QCheck.Test.make ~count:500 ~name:"rql print/parse round-trip"
    (QCheck.make rql_gen ~print:(fun q -> Rql.print q))
    (fun q ->
      let q' = Rql.parse (Rql.print q) in
      (* Float NaN would break structural equality, but the generator
         only draws finite floats *)
      q' = q)

(* --- end-to-end over TCP --- *)

let catalog_text =
  {|<catalog>
  {for $prodname in distinct(view("default")/product/row/pname)
   let $products := view("default")/product/row[./pname = $prodname]
   let $vendors := view("default")/vendor/row[./pid = $products/pid]
   where count($vendors) >= 2
   return <product name="{$prodname}">
     {for $vendor in $vendors
      return <vendor>{$vendor/*}</vendor>}
   </product>}
</catalog>|}

let with_api ?max_inflight ?deadline_ms ?retain f =
  let db = Fixtures.mk_db () in
  let mgr = Runtime.create ~strategy:Runtime.Grouped_agg db in
  Runtime.define_view mgr ~name:"catalog" catalog_text;
  let hub = Subscribe.attach mgr in
  let api = Api.create ?max_inflight ?deadline_ms ?retain ~port:0 ~mgr ~hub () in
  Fun.protect ~finally:(fun () -> Api.stop api) (fun () -> f db mgr hub api)

let connect api =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Api.port api));
  Unix.set_nonblock fd;
  fd

let send fd s =
  let rec go off =
    if off < String.length s then
      match Unix.write_substring fd s off (String.length s - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        go off
  in
  go 0

let recv_into fd buf =
  let b = Bytes.create 65536 in
  match Unix.read fd b 0 (Bytes.length b) with
  | 0 -> `Eof
  | n ->
    Buffer.add_subbytes buf b 0 n;
    `Data
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    `Nothing

(* pump the server and the client fd until [pred] holds on the bytes
   received so far (or a generous round limit runs out) *)
let pump_until api fd buf pred =
  let rounds = ref 0 in
  while (not (pred (Buffer.contents buf))) && !rounds < 1000 do
    incr rounds;
    ignore (Api.step ~timeout_ms:2 api);
    ignore (recv_into fd buf)
  done;
  Buffer.contents buf

type http_response = {
  r_status : int;
  r_headers : (string * string) list;
  r_body : string;
}

let parse_response data =
  match Stdlib.String.index_opt data '\r' with
  | None -> Alcotest.failf "no status line in %S" data
  | Some _ ->
    let head_end =
      let rec find i =
        if i + 3 >= String.length data then
          Alcotest.failf "incomplete head in %S" data
        else if String.sub data i 4 = "\r\n\r\n" then i
        else find (i + 1)
      in
      find 0
    in
    let head = String.sub data 0 head_end in
    let rest = String.sub data (head_end + 4) (String.length data - head_end - 4) in
    (match String.split_on_char '\r' head with
    | status :: hdr_lines ->
      let status_code =
        match String.split_on_char ' ' status with
        | _ :: code :: _ -> int_of_string code
        | _ -> Alcotest.failf "bad status line %S" status
      in
      let headers =
        List.filter_map
          (fun line ->
            let line =
              if String.length line > 0 && line.[0] = '\n' then
                String.sub line 1 (String.length line - 1)
              else line
            in
            match Stdlib.String.index_opt line ':' with
            | Some i ->
              Some
                ( String.lowercase_ascii (String.sub line 0 i),
                  String.trim
                    (String.sub line (i + 1) (String.length line - i - 1)) )
            | None -> None)
          hdr_lines
      in
      { r_status = status_code; r_headers = headers; r_body = rest }
    | [] -> Alcotest.failf "empty head in %S" data)

(* head complete + content-length satisfied *)
let has_full_response data =
  let rec find_head i =
    if i + 3 >= String.length data then None
    else if String.sub data i 4 = "\r\n\r\n" then Some i
    else find_head (i + 1)
  in
  match find_head 0 with
  | None -> false
  | Some head_end -> (
    let r = parse_response data in
    match List.assoc_opt "content-length" r.r_headers with
    | Some l -> String.length data - head_end - 4 >= int_of_string (String.trim l)
    | None -> true)

let request ?(meth = "GET") ?(headers = []) ?(body = "") api target =
  let fd = connect api in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ()) @@ fun () ->
  let extra =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers)
  in
  send fd
    (Printf.sprintf "%s %s HTTP/1.1\r\nhost: t\r\n%scontent-length: %d\r\n\r\n%s"
       meth target extra (String.length body) body);
  let buf = Buffer.create 512 in
  let data = pump_until api fd buf has_full_response in
  parse_response data

let test_http_healthz () =
  with_api @@ fun _db _mgr _hub api ->
  let r = request api "/healthz" in
  Alcotest.(check int) "200" 200 r.r_status;
  Tjson.check_valid_json "healthz" r.r_body;
  Alcotest.(check bool) "ok" true (contains r.r_body "\"ok\": true")

let test_http_step_reports_activity () =
  (* the CLI pump loop relies on step returning > 0 while there is work *)
  with_api @@ fun _db _mgr _hub api ->
  let fd = connect api in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ()) @@ fun () ->
  send fd "GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n";
  (* give the kernel a moment to deliver, then the accept round must
     report the listener as ready *)
  Unix.sleepf 0.05;
  let n1 = Api.step ~timeout_ms:50 api in
  Alcotest.(check bool) "accept round sees activity" true (n1 > 0);
  let total = ref n1 in
  for _ = 1 to 20 do
    total := !total + Api.step ~timeout_ms:2 api
  done;
  let buf = Buffer.create 256 in
  ignore (recv_into fd buf);
  Alcotest.(check bool) "served" true
    (contains (Buffer.contents buf) "200")

let test_http_query_json () =
  with_api @@ fun _db _mgr _hub api ->
  let r = request api "/views/catalog" in
  Alcotest.(check int) "200" 200 r.r_status;
  let j = Tjson.parse_json r.r_body in
  Alcotest.(check string) "view" "catalog"
    (Tjson.as_str "view" (Tjson.member_exn "q" "view" j));
  Alcotest.(check (float 0.0)) "total" 2.0
    (Tjson.as_num "total" (Tjson.member_exn "q" "total" j));
  let rows = Tjson.as_arr "rows" (Tjson.member_exn "q" "rows" j) in
  Alcotest.(check int) "two products" 2 (List.length rows)

let test_http_query_rql () =
  with_api @@ fun _db _mgr _hub api ->
  (* vendor level: price >= 130 descending, vid+price only *)
  let r =
    request api
      "/views/catalog?ge(price,130)&sort(-price)&level=vendor&select(vid,price)"
  in
  Alcotest.(check int) "200" 200 r.r_status;
  let j = Tjson.parse_json r.r_body in
  let rows = Tjson.as_arr "rows" (Tjson.member_exn "q" "rows" j) in
  Alcotest.(check int) "four offers >= 130" 4 (List.length rows);
  let prices =
    List.map
      (fun row ->
        Tjson.as_num "price"
          (Tjson.member_exn "row" "price" (Tjson.member_exn "row" "fields" row)))
      rows
  in
  Alcotest.(check (list (float 0.0))) "sorted descending"
    [ 200.0; 180.0; 150.0; 140.0 ] prices;
  (* limit slices after the sort *)
  let r2 =
    request api "/views/catalog?ge(price,130)&sort(-price)&limit(1,2)&level=vendor"
  in
  let j2 = Tjson.parse_json r2.r_body in
  Alcotest.(check (float 0.0)) "total unaffected by limit" 4.0
    (Tjson.as_num "t" (Tjson.member_exn "q" "total" j2));
  Alcotest.(check int) "sliced" 2
    (List.length (Tjson.as_arr "rows" (Tjson.member_exn "q" "rows" j2)))

let test_http_query_xml () =
  with_api @@ fun _db _mgr _hub api ->
  let r =
    request api ~headers:[ ("accept", "application/xml") ]
      "/views/catalog?eq(name,string:CRT%2015)"
  in
  Alcotest.(check int) "200" 200 r.r_status;
  Alcotest.(check bool) "xml content type" true
    (match List.assoc_opt "content-type" r.r_headers with
    | Some ct -> contains ct "application/xml"
    | None -> false);
  Alcotest.(check bool) "results element" true
    (contains r.r_body "<results view=\"catalog\"");
  Alcotest.(check bool) "product payload" true
    (contains r.r_body "<product name=\"CRT 15\">")

let test_http_query_errors () =
  with_api @@ fun _db _mgr _hub api ->
  let r = request api "/views/nosuch" in
  Alcotest.(check int) "unknown view 404" 404 r.r_status;
  let r = request api "/views/catalog?badop(a,b)" in
  Alcotest.(check int) "bad rql 400" 400 r.r_status;
  Tjson.check_valid_json "rql error payload" r.r_body;
  let j = Tjson.parse_json r.r_body in
  let detail = Tjson.member_exn "err" "detail" j in
  let fields = Tjson.as_arr "fields" (Tjson.member_exn "err" "fields" detail) in
  (* nested arrays: each field is a [name] singleton *)
  Alcotest.(check bool) "fields are arrays" true
    (List.for_all (function Tjson.J_arr [ Tjson.J_str _ ] -> true | _ -> false) fields);
  Alcotest.(check bool) "lists @name" true
    (List.exists
       (function Tjson.J_arr [ Tjson.J_str "@name" ] -> true | _ -> false)
       fields);
  let r = request api "/views/catalog?eq(nosuchfield,1)" in
  Alcotest.(check int) "unknown field 400" 400 r.r_status;
  let r = request api ~meth:"DELETE" "/views/catalog" in
  Alcotest.(check int) "405" 405 r.r_status;
  let r = request api "/nope" in
  Alcotest.(check int) "404" 404 r.r_status

let test_http_sql () =
  with_api @@ fun _db _mgr _hub api ->
  let r = request api ~meth:"POST" ~body:"SELECT pname FROM product" "/sql" in
  Alcotest.(check int) "200" 200 r.r_status;
  let j = Tjson.parse_json r.r_body in
  Alcotest.(check (float 0.0)) "three rows" 3.0
    (Tjson.as_num "count" (Tjson.member_exn "q" "count" j));
  let r =
    request api ~meth:"POST"
      ~body:"UPDATE vendor SET price = 101.0 WHERE vid = 'Amazon'" "/sql"
  in
  Alcotest.(check int) "200" 200 r.r_status;
  Alcotest.(check bool) "affected" true (contains r.r_body "\"affected\": 1");
  let r = request api ~meth:"POST" ~body:"SELEKT broken" "/sql" in
  Alcotest.(check int) "sql error 400" 400 r.r_status

(* an SSE client: connect, upgrade, and collect frames while pumping *)
let open_sse ?(headers = []) api name =
  let fd = connect api in
  let extra =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers)
  in
  send fd (Printf.sprintf "GET /subscribe/%s HTTP/1.1\r\nhost: t\r\n%s\r\n" name extra);
  fd

let test_http_dml_to_sse () =
  with_api @@ fun _db _mgr hub api ->
  Subscribe.subscribe hub
    "feed AFTER UPDATE ON view('catalog')/product/vendor";
  let fd = open_sse api "feed" in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ()) @@ fun () ->
  let buf = Buffer.create 512 in
  ignore (pump_until api fd buf (fun d -> contains d "text/event-stream"));
  Alcotest.(check bool) "sse headers" true
    (contains (Buffer.contents buf) "text/event-stream");
  (* DML over HTTP fires the trigger; Api.step flushes the hub into the
     stream within the same pump loop *)
  let r =
    request api ~meth:"POST"
      ~body:"UPDATE vendor SET price = 99.0 WHERE vid = 'Amazon'" "/sql"
  in
  Alcotest.(check int) "dml ok" 200 r.r_status;
  let data = pump_until api fd buf (fun d -> contains d "event: notification") in
  Alcotest.(check bool) "sse event id" true (contains data "id: 1");
  Alcotest.(check bool) "payload names the subscription" true
    (contains data "\"subscription\": \"feed\"");
  Alcotest.(check bool) "payload carries the new node" true
    (contains data "99.0")

let test_http_sse_replay () =
  with_api @@ fun _db _mgr hub api ->
  Subscribe.subscribe hub
    "feed AFTER UPDATE ON view('catalog')/product/vendor COALESCE off";
  (* two firings before any client connects *)
  let dml price =
    ignore
      (request api ~meth:"POST"
         ~body:(Printf.sprintf "UPDATE vendor SET price = %.1f WHERE vid = 'Amazon'" price)
         "/sql")
  in
  dml 91.0;
  dml 92.0;
  (* a late subscriber with Last-Event-ID: 1 must get event 2 replayed,
     and only event 2 — exactly the reconnect contract *)
  let fd = open_sse api ~headers:[ ("Last-Event-ID", "1") ] "feed" in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ()) @@ fun () ->
  let buf = Buffer.create 512 in
  let data = pump_until api fd buf (fun d -> contains d "id: 2") in
  Alcotest.(check bool) "replays event 2" true (contains data "92.0");
  Alcotest.(check bool) "does not replay event 1" false (contains data "id: 1\n");
  (* a client from cursor 0 gets both *)
  let fd2 = open_sse api ~headers:[ ("Last-Event-ID", "0") ] "feed" in
  Fun.protect ~finally:(fun () -> try Unix.close fd2 with _ -> ()) @@ fun () ->
  let buf2 = Buffer.create 512 in
  let data2 = pump_until api fd2 buf2 (fun d -> contains d "id: 2") in
  Alcotest.(check bool) "full replay has event 1" true (contains data2 "id: 1");
  Alcotest.(check bool) "and event 1's payload" true (contains data2 "91.0")

let test_http_sse_gap () =
  (* retain 1: a cursor-0 reconnect after 2 events fell out of retention
     and must be told so with a gap event before the live tail *)
  with_api ~retain:1 @@ fun _db _mgr hub api ->
  Subscribe.subscribe hub
    "feed AFTER UPDATE ON view('catalog')/product/vendor COALESCE off";
  ignore
    (request api ~meth:"POST"
       ~body:"UPDATE vendor SET price = 91.0 WHERE vid = 'Amazon'" "/sql");
  ignore
    (request api ~meth:"POST"
       ~body:"UPDATE vendor SET price = 92.0 WHERE vid = 'Amazon'" "/sql");
  let fd = open_sse api ~headers:[ ("Last-Event-ID", "0") ] "feed" in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ()) @@ fun () ->
  let buf = Buffer.create 512 in
  let data = pump_until api fd buf (fun d -> contains d "id: 2") in
  Alcotest.(check bool) "gap signalled" true (contains data "event: gap");
  Alcotest.(check bool) "gap tells the oldest retained" true
    (contains data "\"oldest\": 2");
  (* only event 2 is redelivered as a notification (event 1's payload
     does surface as event 2's OLD node — that is not a redelivery) *)
  let rec count_from i acc =
    if i + 19 > String.length data then acc
    else if String.sub data i 19 = "event: notification" then
      count_from (i + 19) (acc + 1)
    else count_from (i + 1) acc
  in
  Alcotest.(check int) "one notification replayed" 1 (count_from 0 0);
  Alcotest.(check bool) "event 2 replayed" true (contains data "92.0")

let test_http_longpoll () =
  with_api @@ fun _db _mgr hub api ->
  Subscribe.subscribe hub
    "feed AFTER UPDATE ON view('catalog')/product/vendor COALESCE off";
  ignore
    (request api ~meth:"POST"
       ~body:"UPDATE vendor SET price = 93.0 WHERE vid = 'Amazon'" "/sql");
  (* events pending: the long-poll answers immediately *)
  let r = request api "/subscribe/feed?mode=longpoll&cursor=0" in
  Alcotest.(check int) "200" 200 r.r_status;
  Tjson.check_valid_json "batch" r.r_body;
  let j = Tjson.parse_json r.r_body in
  Alcotest.(check (float 0.0)) "cursor advanced" 1.0
    (Tjson.as_num "cursor" (Tjson.member_exn "b" "cursor" j));
  Alcotest.(check int) "one event" 1
    (List.length (Tjson.as_arr "events" (Tjson.member_exn "b" "events" j)));
  Alcotest.(check int) "unknown feed is 404" 404
    (request api "/subscribe/nosuch?mode=longpoll").r_status

let test_http_longpoll_deadline () =
  (* no pending events: held until the deadline, then an empty batch *)
  with_api ~deadline_ms:120 @@ fun _db _mgr hub api ->
  Subscribe.subscribe hub
    "feed AFTER UPDATE ON view('catalog')/product/vendor";
  let t0 = Unix.gettimeofday () in
  let r = request api "/subscribe/feed?mode=longpoll&cursor=0" in
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check int) "empty batch 200" 200 r.r_status;
  let j = Tjson.parse_json r.r_body in
  Alcotest.(check int) "no events" 0
    (List.length (Tjson.as_arr "events" (Tjson.member_exn "b" "events" j)));
  Alcotest.(check bool) "held until the deadline" true (dt >= 0.1);
  Alcotest.(check bool) "counted as deadline abort" true
    (Httpd.deadline_aborts (Api.httpd api) >= 1)

let test_http_admission_control () =
  (* one in-flight stream allowed: the second subscriber is refused *)
  with_api ~max_inflight:1 @@ fun _db _mgr hub api ->
  Subscribe.subscribe hub
    "feed AFTER UPDATE ON view('catalog')/product/vendor";
  let fd = open_sse api "feed" in
  let buf = Buffer.create 256 in
  ignore (pump_until api fd buf (fun d -> contains d "text/event-stream"));
  let r = request api "/subscribe/feed" in
  Alcotest.(check int) "503" 503 r.r_status;
  Alcotest.(check bool) "retry-after" true
    (List.mem_assoc "retry-after" r.r_headers);
  Alcotest.(check bool) "counted" true (Httpd.overloads (Api.httpd api) >= 1);
  (* at the cap the server sheds ALL new requests — its capacity is
     consumed by the streams it is already carrying *)
  let r2 = request api "/healthz" in
  Alcotest.(check int) "queries shed too" 503 r2.r_status;
  (* the client leaving frees the slot *)
  Unix.close fd;
  for _ = 1 to 20 do
    ignore (Api.step ~timeout_ms:2 api)
  done;
  let r3 = request api "/healthz" in
  Alcotest.(check int) "recovers once the stream closes" 200 r3.r_status

let test_http_malformed () =
  with_api @@ fun _db _mgr _hub api ->
  let raw bytes pred =
    let fd = connect api in
    Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ()) @@ fun () ->
    send fd bytes;
    let buf = Buffer.create 256 in
    let data = pump_until api fd buf pred in
    data
  in
  let got_400 = raw "NONSENSE\r\n\r\n" (fun d -> contains d "HTTP/1.1 400") in
  Alcotest.(check bool) "garbage request line" true (contains got_400 "400");
  let got =
    raw "GET /healthz HTTP/1.0\r\nbad header line\r\n\r\n"
      (fun d -> contains d "HTTP/1.1 ")
  in
  Alcotest.(check bool) "bad header handled" true (contains got "HTTP/1.1 ");
  let chunked =
    raw "POST /sql HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"
      (fun d -> contains d "HTTP/1.1 501")
  in
  Alcotest.(check bool) "chunked rejected" true (contains chunked "501");
  let huge =
    raw
      (Printf.sprintf "POST /sql HTTP/1.1\r\ncontent-length: %d\r\n\r\n" (10 * 1024 * 1024))
      (fun d -> contains d "HTTP/1.1 413")
  in
  Alcotest.(check bool) "oversized body refused" true (contains huge "413");
  (* the server survives all of it *)
  Alcotest.(check int) "still serving" 200 (request api "/healthz").r_status

let test_http_fuzz =
  QCheck.Test.make ~count:60 ~name:"malformed bytes never crash the server"
    QCheck.(string_of_size Gen.(int_bound 200))
    (fun junk ->
      with_api @@ fun _db _mgr _hub api ->
      let fd = connect api in
      Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ()) @@ fun () ->
      (if String.length junk > 0 then send fd junk);
      for _ = 1 to 20 do
        ignore (Api.step ~timeout_ms:1 api)
      done;
      (* whatever the junk did, a well-formed request still succeeds *)
      (request api "/healthz").r_status = 200)

let test_http_view_update () =
  with_api @@ fun _db _mgr hub api ->
  Subscribe.subscribe hub
    "feed AFTER DELETE ON view('catalog')/product/vendor";
  (* targeting the wrong view 409s before planning *)
  let r =
    request api ~meth:"POST"
      ~body:"DELETE NODE view(\"other\")/product/vendor[./vid = 'Amazon']"
      "/views/catalog/update"
  in
  Alcotest.(check int) "view mismatch 409" 409 r.r_status;
  (* a deletable node translates to base DML, fires triggers, reaches SSE *)
  let fd = open_sse api "feed" in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ()) @@ fun () ->
  let buf = Buffer.create 512 in
  ignore (pump_until api fd buf (fun d -> contains d "text/event-stream"));
  let r =
    request api ~meth:"POST"
      ~body:"DELETE NODE view(\"catalog\")/product/vendor[./vid = 'Amazon']"
      "/views/catalog/update"
  in
  Alcotest.(check int) "executed" 200 r.r_status;
  Tjson.check_valid_json "plan summary" r.r_body;
  Alcotest.(check bool) "ops rendered" true (contains r.r_body "DELETE FROM vendor");
  let data = pump_until api fd buf (fun d -> contains d "event: notification") in
  Alcotest.(check bool) "delete reached the feed" true
    (contains data "\"event\": \"DELETE\"");
  (* an ambiguous statement is rejected with the structured diagnostic *)
  let r =
    request api ~meth:"POST"
      ~body:"DELETE NODE view(\"catalog\")/product" "/views/catalog/update"
  in
  Alcotest.(check int) "rejected 422" 422 r.r_status;
  Tjson.check_valid_json "diagnostic" r.r_body;
  Alcotest.(check bool) "carries the reason" true (contains r.r_body "\"reason\":")

let test_http_metrics () =
  with_api @@ fun _db _mgr _hub api ->
  ignore (request api "/healthz");
  let r = request api "/metrics" in
  Alcotest.(check int) "200" 200 r.r_status;
  Alcotest.(check bool) "runtime series" true
    (contains r.r_body "trigview_runtime_total");
  Alcotest.(check bool) "http counters" true
    (contains r.r_body "trigview_http_total{name=\"requests\"}");
  Alcotest.(check bool) "per-endpoint latency" true
    (contains r.r_body "trigview_http_latency_ns");
  let r = request api "/stats" in
  Alcotest.(check int) "stats 200" 200 r.r_status;
  Tjson.check_valid_json "stats json" r.r_body;
  let r = request api "/analyze" in
  Alcotest.(check int) "analyze 200" 200 r.r_status;
  Tjson.check_valid_json "analyze json" r.r_body

let () =
  Alcotest.run "http"
    [ ( "rql",
        [ Alcotest.test_case "golden" `Quick test_rql_golden;
          Alcotest.test_case "value typing" `Quick test_rql_values;
          Alcotest.test_case "errors" `Quick test_rql_errors;
          QCheck_alcotest.to_alcotest test_rql_roundtrip;
        ] );
      ( "endpoints",
        [ Alcotest.test_case "healthz" `Quick test_http_healthz;
          Alcotest.test_case "step reports activity" `Quick
            test_http_step_reports_activity;
          Alcotest.test_case "query json" `Quick test_http_query_json;
          Alcotest.test_case "query rql" `Quick test_http_query_rql;
          Alcotest.test_case "query xml" `Quick test_http_query_xml;
          Alcotest.test_case "query errors" `Quick test_http_query_errors;
          Alcotest.test_case "sql" `Quick test_http_sql;
          Alcotest.test_case "view update" `Quick test_http_view_update;
          Alcotest.test_case "sse gap" `Quick test_http_sse_gap;
          Alcotest.test_case "metrics" `Quick test_http_metrics;
        ] );
      ( "subscribe",
        [ Alcotest.test_case "dml to sse" `Quick test_http_dml_to_sse;
          Alcotest.test_case "last-event-id replay" `Quick test_http_sse_replay;
          Alcotest.test_case "long-poll" `Quick test_http_longpoll;
          Alcotest.test_case "long-poll deadline" `Quick test_http_longpoll_deadline;
          Alcotest.test_case "admission control" `Quick test_http_admission_control;
        ] );
      ( "robustness",
        [ Alcotest.test_case "malformed requests" `Quick test_http_malformed;
          QCheck_alcotest.to_alcotest test_http_fuzz;
        ] );
    ]
