(* Observability-layer unit tests: the trace ring's eviction policy, the
   percentile clamp, and well-formedness of every JSON/Prometheus export
   (report_json, trace json, audit_json, Chrome trace-event, text
   exposition).  JSON is checked with a minimal recursive-descent parser —
   enough to reject anything a real parser would reject. *)

open Relkit

(* the JSON parser is Tjson, shared across the test executables *)

open Tjson

(* --- trace ring: a full buffer evicts the OLDEST event --- *)

let ev name start =
  { Obs.Trace.ev_name = name; ev_note = ""; ev_start_ns = Int64.of_int start;
    ev_dur_ns = 1L }

let test_trace_ring_eviction () =
  let tr = Obs.Trace.create ~limit:4 () in
  for i = 1 to 6 do
    Obs.Trace.record tr (ev (Printf.sprintf "e%d" i) (i * 10))
  done;
  Alcotest.(check (list string)) "newest window kept"
    [ "e3"; "e4"; "e5"; "e6" ]
    (List.map (fun e -> e.Obs.Trace.ev_name) (Obs.Trace.events tr));
  Alcotest.(check int) "dropped counts evictions" 2 (Obs.Trace.dropped tr);
  (* draining continues to rotate: two more evictions *)
  Obs.Trace.record tr (ev "e7" 70);
  Obs.Trace.record tr (ev "e8" 80);
  Alcotest.(check (list string)) "window advanced"
    [ "e5"; "e6"; "e7"; "e8" ]
    (List.map (fun e -> e.Obs.Trace.ev_name) (Obs.Trace.events tr));
  Alcotest.(check int) "dropped accumulated" 4 (Obs.Trace.dropped tr)

let test_audit_ring_eviction () =
  let a = Obs.Audit.create ~limit:2 () in
  Obs.Audit.set_enabled a true;
  let mk id =
    { Obs.Audit.id; ts_ns = 0L; stmt_id = id; stmt_event = "UPDATE";
      stmt_table = "t"; sql_trigger = "trig"; strategy = "GROUPED";
      group_id = 0; view = "v"; plan_table = "t"; plan_mode = "compiled";
      frag_keys = []; cond_mode = "none"; origin = ""; delta_rows = 0; nabla_rows = 0;
      pairs_computed = 0; pairs_spurious = 0; pairs_kept = 0;
      cond_rejected = 0; dispatched = 0; actions = []; notes = [];
    }
  in
  List.iter (fun id -> Obs.Audit.add a (mk id)) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "newest two kept" [ 2; 3 ]
    (List.map (fun r -> r.Obs.Audit.id) (Obs.Audit.records a));
  Alcotest.(check int) "dropped" 1 (Obs.Audit.dropped a);
  Alcotest.(check bool) "evicted id explained" true
    (String.length (Obs.Audit.why a 1) > 0 && Obs.Audit.find a 1 = None)

(* --- percentile clamp: the geometric midpoint cannot leave [min, max] --- *)

let test_percentile_empty () =
  let h = Obs.Metrics.create_histogram () in
  Alcotest.(check (float 0.0)) "empty p50" 0.0 (Obs.Metrics.percentile_ns h 0.5)

let test_percentile_single_sample () =
  let h = Obs.Metrics.create_histogram () in
  Obs.Metrics.observe h 1000L;
  (* raw midpoint of bucket [512, 1024) is ~724 ns — below the only sample;
     the clamp pins every percentile to it *)
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "single-sample p%.0f" (q *. 100.0))
        1000.0
        (Obs.Metrics.percentile_ns h q))
    [ 0.5; 0.95; 0.99 ]

let test_percentile_same_bucket () =
  let h = Obs.Metrics.create_histogram () in
  List.iter (fun ns -> Obs.Metrics.observe h ns) [ 600L; 700L; 800L ];
  List.iter
    (fun q ->
      let p = Obs.Metrics.percentile_ns h q in
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f within observed range" (q *. 100.0))
        true
        (p >= 600.0 && p <= 800.0))
    [ 0.01; 0.5; 0.99 ]

(* --- export formats over a live runtime --- *)

let product_schema =
  Schema.make ~name:"product"
    ~columns:
      [ ("pid", Schema.TString); ("pname", Schema.TString); ("price", Schema.TFloat) ]
    ~primary_key:[ "pid" ] ()

let view_text =
  {|<catalog>
    {for $p in view("default")/product/row
     return <product name="{$p/pname}"><price>{$p/price}</price></product>}
  </catalog>|}

let setup_live () =
  let db = Database.create () in
  Database.create_table db product_schema;
  Database.insert_rows db ~table:"product"
    [ [| Value.String "P1"; Value.String "crt"; Value.Float 10.0 |];
      [| Value.String "P2"; Value.String "lcd"; Value.Float 20.0 |];
    ];
  let mgr = Trigview.Runtime.create ~strategy:Trigview.Runtime.Grouped db in
  Trigview.Runtime.define_view mgr ~name:"catalog" view_text;
  Trigview.Runtime.register_action mgr ~name:"rec" (fun _ -> ());
  Trigview.Runtime.set_tracing mgr true;
  Trigview.Runtime.set_audit mgr true;
  Trigview.Runtime.create_trigger mgr
    "CREATE TRIGGER t AFTER UPDATE ON view('catalog')/product DO rec(NEW_NODE)";
  ignore
    (Database.update_pk db ~table:"product" ~pk:[ Value.String "P1" ]
       ~set:(fun r -> [| r.(0); r.(1); Value.Float 11.0 |]));
  mgr

let test_json_exports_well_formed () =
  let mgr = setup_live () in
  check_valid_json "report_json" (Trigview.Runtime.report_json mgr);
  check_valid_json "explain_json" (Trigview.Runtime.explain_json mgr);
  check_valid_json "trace_json" (Trigview.Runtime.trace_json mgr);
  check_valid_json "audit_json" (Trigview.Runtime.audit_json mgr);
  check_valid_json "trace_chrome_json" (Trigview.Runtime.trace_chrome_json mgr)

let test_chrome_trace_structure () =
  let mgr = setup_live () in
  let events =
    match parse_json (Trigview.Runtime.trace_chrome_json mgr) with
    | J_obj fields -> (
      match List.assoc_opt "traceEvents" fields with
      | Some (J_arr evs) -> evs
      | _ -> Alcotest.fail "no traceEvents array")
    | _ -> Alcotest.fail "chrome trace is not an object"
  in
  Alcotest.(check bool) "has events" true (events <> []);
  let field name = function
    | J_obj fs -> List.assoc_opt name fs
    | _ -> None
  in
  let num = function Some (J_num f) -> f | _ -> Alcotest.fail "missing number" in
  let str = function Some (J_str s) -> s | _ -> Alcotest.fail "missing string" in
  (* every event: non-negative ts; complete events also non-negative dur;
     per-phase ts sequences are monotone (spans sort by start, instants by
     timestamp) *)
  let last_span = ref neg_infinity and last_instant = ref neg_infinity in
  let spans = ref 0 and instants = ref 0 in
  List.iter
    (fun e ->
      let ts = num (field "ts" e) in
      Alcotest.(check bool) "ts non-negative" true (ts >= 0.0);
      match str (field "ph" e) with
      | "X" ->
        incr spans;
        let dur = num (field "dur" e) in
        Alcotest.(check bool) "dur non-negative" true (dur >= 0.0);
        Alcotest.(check bool) "span ts monotone" true (ts >= !last_span);
        last_span := ts
      | "i" ->
        incr instants;
        Alcotest.(check bool) "instant ts monotone" true (ts >= !last_instant);
        last_instant := ts
      | ph -> Alcotest.failf "unexpected phase %S" ph)
    events;
  Alcotest.(check bool) "has span events" true (!spans > 0);
  (* auditing was on and the update fired: its record must be an instant *)
  Alcotest.(check bool) "audit records exported as instants" true (!instants > 0)

let test_prometheus_exposition () =
  let mgr = setup_live () in
  let out = Trigview.Runtime.metrics_prometheus mgr in
  let lines = String.split_on_char '\n' out in
  List.iter
    (fun line ->
      if line <> "" && line.[0] <> '#' then begin
        Alcotest.(check bool)
          (Printf.sprintf "metric line starts with family name: %s" line)
          true
          (String.length line > 9 && String.sub line 0 9 = "trigview_");
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "no value on line %S" line
        | Some i ->
          let v = String.sub line (i + 1) (String.length line - i - 1) in
          if float_of_string_opt v = None then
            Alcotest.failf "non-numeric value %S on line %S" v line
      end)
    lines;
  let contains needle =
    let nh = String.length out and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub out i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains needle))
    [ "# TYPE trigview_runtime_total counter";
      "# TYPE trigview_latency_ns histogram";
      "trigview_runtime_total{name=\"sql_firings\"}";
      "trigview_latency_ns_bucket{name=";
      "le=\"+Inf\"";
      "trigview_audit_total{name=\"records\"} 1";
    ]

let () =
  Alcotest.run "obs"
    [ ( "ring",
        [ Alcotest.test_case "trace eviction" `Quick test_trace_ring_eviction;
          Alcotest.test_case "audit eviction" `Quick test_audit_ring_eviction;
        ] );
      ( "percentiles",
        [ Alcotest.test_case "empty" `Quick test_percentile_empty;
          Alcotest.test_case "single sample" `Quick test_percentile_single_sample;
          Alcotest.test_case "same bucket" `Quick test_percentile_same_bucket;
        ] );
      ( "exports",
        [ Alcotest.test_case "JSON well-formed" `Quick test_json_exports_well_formed;
          Alcotest.test_case "chrome trace" `Quick test_chrome_trace_structure;
          Alcotest.test_case "prometheus" `Quick test_prometheus_exposition;
        ] );
    ]
