(* Observability-layer unit tests: the trace ring's eviction policy, the
   percentile clamp, and well-formedness of every JSON/Prometheus export
   (report_json, trace json, audit_json, Chrome trace-event, text
   exposition).  JSON is checked with a minimal recursive-descent parser —
   enough to reject anything a real parser would reject. *)

open Relkit

(* --- a tiny JSON parser (validation + value extraction) --- *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
          Buffer.add_char buf 'x';
          advance ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some c
              when (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')
                   || (c >= 'A' && c <= 'F') ->
              advance ()
            | _ -> fail "bad \\u escape"
          done
        | _ -> fail "bad escape");
        go ()
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek () with Some c when num_char c -> true | _ -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (advance (); J_obj [])
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected , or }"
        in
        J_obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (advance (); J_arr [])
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ]"
        in
        J_arr (items [])
      end
    | Some '"' -> J_str (parse_string ())
    | Some 't' -> literal "true" (J_bool true)
    | Some 'f' -> literal "false" (J_bool false)
    | Some 'n' -> literal "null" J_null
    | Some _ -> J_num (parse_number ())
    | None -> fail "empty input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  v

let check_valid_json label s =
  match parse_json s with
  | _ -> ()
  | exception Bad_json msg -> Alcotest.failf "%s: invalid JSON: %s\n%s" label msg s

(* --- trace ring: a full buffer evicts the OLDEST event --- *)

let ev name start =
  { Obs.Trace.ev_name = name; ev_note = ""; ev_start_ns = Int64.of_int start;
    ev_dur_ns = 1L }

let test_trace_ring_eviction () =
  let tr = Obs.Trace.create ~limit:4 () in
  for i = 1 to 6 do
    Obs.Trace.record tr (ev (Printf.sprintf "e%d" i) (i * 10))
  done;
  Alcotest.(check (list string)) "newest window kept"
    [ "e3"; "e4"; "e5"; "e6" ]
    (List.map (fun e -> e.Obs.Trace.ev_name) (Obs.Trace.events tr));
  Alcotest.(check int) "dropped counts evictions" 2 (Obs.Trace.dropped tr);
  (* draining continues to rotate: two more evictions *)
  Obs.Trace.record tr (ev "e7" 70);
  Obs.Trace.record tr (ev "e8" 80);
  Alcotest.(check (list string)) "window advanced"
    [ "e5"; "e6"; "e7"; "e8" ]
    (List.map (fun e -> e.Obs.Trace.ev_name) (Obs.Trace.events tr));
  Alcotest.(check int) "dropped accumulated" 4 (Obs.Trace.dropped tr)

let test_audit_ring_eviction () =
  let a = Obs.Audit.create ~limit:2 () in
  Obs.Audit.set_enabled a true;
  let mk id =
    { Obs.Audit.id; ts_ns = 0L; stmt_id = id; stmt_event = "UPDATE";
      stmt_table = "t"; sql_trigger = "trig"; strategy = "GROUPED";
      group_id = 0; view = "v"; plan_table = "t"; plan_mode = "compiled";
      frag_keys = []; cond_mode = "none"; origin = ""; delta_rows = 0; nabla_rows = 0;
      pairs_computed = 0; pairs_spurious = 0; pairs_kept = 0;
      cond_rejected = 0; dispatched = 0; actions = []; notes = [];
    }
  in
  List.iter (fun id -> Obs.Audit.add a (mk id)) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "newest two kept" [ 2; 3 ]
    (List.map (fun r -> r.Obs.Audit.id) (Obs.Audit.records a));
  Alcotest.(check int) "dropped" 1 (Obs.Audit.dropped a);
  Alcotest.(check bool) "evicted id explained" true
    (String.length (Obs.Audit.why a 1) > 0 && Obs.Audit.find a 1 = None)

(* --- percentile clamp: the geometric midpoint cannot leave [min, max] --- *)

let test_percentile_empty () =
  let h = Obs.Metrics.create_histogram () in
  Alcotest.(check (float 0.0)) "empty p50" 0.0 (Obs.Metrics.percentile_ns h 0.5)

let test_percentile_single_sample () =
  let h = Obs.Metrics.create_histogram () in
  Obs.Metrics.observe h 1000L;
  (* raw midpoint of bucket [512, 1024) is ~724 ns — below the only sample;
     the clamp pins every percentile to it *)
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "single-sample p%.0f" (q *. 100.0))
        1000.0
        (Obs.Metrics.percentile_ns h q))
    [ 0.5; 0.95; 0.99 ]

let test_percentile_same_bucket () =
  let h = Obs.Metrics.create_histogram () in
  List.iter (fun ns -> Obs.Metrics.observe h ns) [ 600L; 700L; 800L ];
  List.iter
    (fun q ->
      let p = Obs.Metrics.percentile_ns h q in
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f within observed range" (q *. 100.0))
        true
        (p >= 600.0 && p <= 800.0))
    [ 0.01; 0.5; 0.99 ]

(* --- export formats over a live runtime --- *)

let product_schema =
  Schema.make ~name:"product"
    ~columns:
      [ ("pid", Schema.TString); ("pname", Schema.TString); ("price", Schema.TFloat) ]
    ~primary_key:[ "pid" ] ()

let view_text =
  {|<catalog>
    {for $p in view("default")/product/row
     return <product name="{$p/pname}"><price>{$p/price}</price></product>}
  </catalog>|}

let setup_live () =
  let db = Database.create () in
  Database.create_table db product_schema;
  Database.insert_rows db ~table:"product"
    [ [| Value.String "P1"; Value.String "crt"; Value.Float 10.0 |];
      [| Value.String "P2"; Value.String "lcd"; Value.Float 20.0 |];
    ];
  let mgr = Trigview.Runtime.create ~strategy:Trigview.Runtime.Grouped db in
  Trigview.Runtime.define_view mgr ~name:"catalog" view_text;
  Trigview.Runtime.register_action mgr ~name:"rec" (fun _ -> ());
  Trigview.Runtime.set_tracing mgr true;
  Trigview.Runtime.set_audit mgr true;
  Trigview.Runtime.create_trigger mgr
    "CREATE TRIGGER t AFTER UPDATE ON view('catalog')/product DO rec(NEW_NODE)";
  ignore
    (Database.update_pk db ~table:"product" ~pk:[ Value.String "P1" ]
       ~set:(fun r -> [| r.(0); r.(1); Value.Float 11.0 |]));
  mgr

let test_json_exports_well_formed () =
  let mgr = setup_live () in
  check_valid_json "report_json" (Trigview.Runtime.report_json mgr);
  check_valid_json "explain_json" (Trigview.Runtime.explain_json mgr);
  check_valid_json "trace_json" (Trigview.Runtime.trace_json mgr);
  check_valid_json "audit_json" (Trigview.Runtime.audit_json mgr);
  check_valid_json "trace_chrome_json" (Trigview.Runtime.trace_chrome_json mgr)

let test_chrome_trace_structure () =
  let mgr = setup_live () in
  let events =
    match parse_json (Trigview.Runtime.trace_chrome_json mgr) with
    | J_obj fields -> (
      match List.assoc_opt "traceEvents" fields with
      | Some (J_arr evs) -> evs
      | _ -> Alcotest.fail "no traceEvents array")
    | _ -> Alcotest.fail "chrome trace is not an object"
  in
  Alcotest.(check bool) "has events" true (events <> []);
  let field name = function
    | J_obj fs -> List.assoc_opt name fs
    | _ -> None
  in
  let num = function Some (J_num f) -> f | _ -> Alcotest.fail "missing number" in
  let str = function Some (J_str s) -> s | _ -> Alcotest.fail "missing string" in
  (* every event: non-negative ts; complete events also non-negative dur;
     per-phase ts sequences are monotone (spans sort by start, instants by
     timestamp) *)
  let last_span = ref neg_infinity and last_instant = ref neg_infinity in
  let spans = ref 0 and instants = ref 0 in
  List.iter
    (fun e ->
      let ts = num (field "ts" e) in
      Alcotest.(check bool) "ts non-negative" true (ts >= 0.0);
      match str (field "ph" e) with
      | "X" ->
        incr spans;
        let dur = num (field "dur" e) in
        Alcotest.(check bool) "dur non-negative" true (dur >= 0.0);
        Alcotest.(check bool) "span ts monotone" true (ts >= !last_span);
        last_span := ts
      | "i" ->
        incr instants;
        Alcotest.(check bool) "instant ts monotone" true (ts >= !last_instant);
        last_instant := ts
      | ph -> Alcotest.failf "unexpected phase %S" ph)
    events;
  Alcotest.(check bool) "has span events" true (!spans > 0);
  (* auditing was on and the update fired: its record must be an instant *)
  Alcotest.(check bool) "audit records exported as instants" true (!instants > 0)

let test_prometheus_exposition () =
  let mgr = setup_live () in
  let out = Trigview.Runtime.metrics_prometheus mgr in
  let lines = String.split_on_char '\n' out in
  List.iter
    (fun line ->
      if line <> "" && line.[0] <> '#' then begin
        Alcotest.(check bool)
          (Printf.sprintf "metric line starts with family name: %s" line)
          true
          (String.length line > 9 && String.sub line 0 9 = "trigview_");
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "no value on line %S" line
        | Some i ->
          let v = String.sub line (i + 1) (String.length line - i - 1) in
          if float_of_string_opt v = None then
            Alcotest.failf "non-numeric value %S on line %S" v line
      end)
    lines;
  let contains needle =
    let nh = String.length out and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub out i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains needle))
    [ "# TYPE trigview_runtime_total counter";
      "# TYPE trigview_latency_ns histogram";
      "trigview_runtime_total{name=\"sql_firings\"}";
      "trigview_latency_ns_bucket{name=";
      "le=\"+Inf\"";
      "trigview_audit_total{name=\"records\"} 1";
    ]

let () =
  Alcotest.run "obs"
    [ ( "ring",
        [ Alcotest.test_case "trace eviction" `Quick test_trace_ring_eviction;
          Alcotest.test_case "audit eviction" `Quick test_audit_ring_eviction;
        ] );
      ( "percentiles",
        [ Alcotest.test_case "empty" `Quick test_percentile_empty;
          Alcotest.test_case "single sample" `Quick test_percentile_single_sample;
          Alcotest.test_case "same bucket" `Quick test_percentile_same_bucket;
        ] );
      ( "exports",
        [ Alcotest.test_case "JSON well-formed" `Quick test_json_exports_well_formed;
          Alcotest.test_case "chrome trace" `Quick test_chrome_trace_structure;
          Alcotest.test_case "prometheus" `Quick test_prometheus_exposition;
        ] );
    ]
