(* The benchmark harness: regenerates every figure of the paper's evaluation
   (§6 and Appendix G).

     dune exec bench/main.exe            -- quick (scaled-down) sweeps
     dune exec bench/main.exe -- --full  -- Table 2 paper-scale parameters
     dune exec bench/main.exe -- --fig=17,23
     dune exec bench/main.exe -- --bechamel  -- bechamel micro-benchmarks

   Absolute numbers are not comparable to the paper's 933 MHz testbed; the
   claims under reproduction are the *shapes*: UNGROUPED grows linearly with
   the trigger count while GROUPED/GROUPED-AGG stay flat (Fig. 17), run time
   grows roughly linearly with depth (Fig. 18) and with the number of
   satisfied triggers (Fig. 24), is insensitive to database size for the
   translated triggers but not for the MATERIALIZED baseline (Fig. 23), and
   GROUPED-AGG's advantage grows with fanout (Fig. 22). *)

module Runtime = Trigview.Runtime

let dispatched = ref 0

let mgr_of ?tuning strategy (built : Workloadlib.Workload.built) =
  let mgr = Runtime.create ~strategy ?tuning built.Workloadlib.Workload.db in
  Runtime.define_view mgr ~name:"doc" built.Workloadlib.Workload.view_text;
  Runtime.register_action mgr ~name:"record" (fun _ -> incr dispatched);
  mgr

(* One measurement: wall clock from the OS monotonic clock (immune to NTP
   slews and, unlike the old [Sys.time]-only code, to the wall/CPU confusion
   that undercounted any time spent off-CPU), plus process CPU time.  A large
   wall/cpu gap flags paging or scheduler noise in a run. *)
type sample = { wall_ms : float; cpu_ms : float }

let nan_sample = { wall_ms = Float.nan; cpu_ms = Float.nan }

(* Average ms per single-row leaf update. *)
let time_point ?(updates = 40) ?tuning ?(trace = false) ?(audit = false) params
    strategy =
  let built = Workloadlib.Workload.build params in
  let mgr = mgr_of ?tuning strategy built in
  Workloadlib.Workload.install_triggers mgr params ~target_name:built.Workloadlib.Workload.top_names.(0);
  (* warm up: fault in indexes and shared plans *)
  for step = 0 to 2 do
    Workloadlib.Workload.update_leaf built ~top_index:0 ~step
  done;
  if trace then Runtime.set_tracing mgr true;
  if audit then Runtime.set_audit mgr true;
  Runtime.reset_stats mgr;
  let w0 = Monotonic_clock.now () in
  let c0 = Sys.time () in
  for step = 3 to 3 + updates - 1 do
    Workloadlib.Workload.update_leaf built ~top_index:0 ~step
  done;
  let c1 = Sys.time () in
  let w1 = Monotonic_clock.now () in
  let n = float_of_int updates in
  { wall_ms = Int64.to_float (Int64.sub w1 w0) /. 1e6 /. n;
    cpu_ms = (c1 -. c0) *. 1000.0 /. n;
  }

(* --- JSON export (--json): machine-readable per-figure numbers --- *)

let json_requested = ref false
let json_entries : (string * string * string * sample) list ref = ref []

let record ~fig ~row ~series sample =
  json_entries := (fig, row, series, sample) :: !json_entries;
  sample

let json_float v =
  if Float.is_nan v then "null" else Printf.sprintf "%.6f" v

(* GROUPED speedup from plan compilation: ratio of summed interpreter wall
   time to summed compiled wall time over the fig 17 trigger counts. *)
let fig17_grouped_speedup () =
  let sum series =
    List.fold_left
      (fun acc (fig, _, s, sample) ->
        if fig = "17" && s = series && not (Float.is_nan sample.wall_ms) then
          acc +. sample.wall_ms
        else acc)
      0.0 !json_entries
  in
  let interp = sum "GROUPED-interp" and compiled = sum "GROUPED" in
  if compiled > 0.0 && interp > 0.0 then interp /. compiled else Float.nan

(* Audit-enabled overhead on the [overhead] figure, as a percentage of the
   everything-off baseline; CI gates on this staying under 10%. *)
let audit_overhead_pct () =
  let find row =
    List.find_map
      (fun (fig, r, _, sample) ->
        if fig = "overhead" && r = row && not (Float.is_nan sample.wall_ms) then
          Some sample.wall_ms
        else None)
      !json_entries
  in
  match find "baseline", find "audit-on" with
  | Some base, Some audit when base > 0.0 -> (audit -. base) /. base *. 100.0
  | _ -> Float.nan

(* Subscription-path overhead on the [fanout] figure's "overhead" rows:
   hub-delivered notifications vs bare action dispatch with identical
   trigger structure and arguments; CI gates on this staying under 10%. *)
let subscription_overhead_pct () =
  let find series =
    List.find_map
      (fun (fig, r, s, sample) ->
        if fig = "fanout" && r = "overhead" && s = series
           && not (Float.is_nan sample.wall_ms)
        then Some sample.wall_ms
        else None)
      !json_entries
  in
  match find "bare-dispatch", find "subscription" with
  | Some base, Some sub when base > 0.0 -> (sub -. base) /. base *. 100.0
  | _ -> Float.nan

(* fanout figure sidecar: delivered-notification throughput per
   (subscriber count, coalescing) cell. *)
let fanout_throughput : (string * string * float) list ref = ref []

(* Per-phase wall-time breakdowns ("phases" section of the JSON): span
   totals per strategy over one traced sweep. *)
let phase_entries : (string * (string * float) list) list ref = ref []

let write_json ~full path =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"mode\": \"%s\",\n" (if full then "full" else "quick"));
  Buffer.add_string buf
    (Printf.sprintf "  \"fig17_grouped_speedup\": %s,\n"
       (json_float (fig17_grouped_speedup ())));
  Buffer.add_string buf
    (Printf.sprintf "  \"audit_overhead_pct\": %s,\n"
       (json_float (audit_overhead_pct ())));
  Buffer.add_string buf
    (Printf.sprintf "  \"subscription_overhead_pct\": %s,\n"
       (json_float (subscription_overhead_pct ())));
  Buffer.add_string buf "  \"fanout_throughput\": [";
  let tputs = List.rev !fanout_throughput in
  List.iteri
    (fun i (row, series, nps) ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"subscribers\": %s, \"series\": \"%s\", \
            \"notifications_per_sec\": %s}"
           row series (json_float nps)))
    tputs;
  Buffer.add_string buf (if tputs = [] then "],\n" else "\n  ],\n");
  Buffer.add_string buf "  \"phases\": {";
  List.iteri
    (fun i (series, phases) ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf (Printf.sprintf "\n    \"%s\": {" series);
      List.iteri
        (fun j (name, ms) ->
          if j > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf (Printf.sprintf "\"%s\": %.3f" name ms))
        phases;
      Buffer.add_string buf "}")
    (List.rev !phase_entries);
  Buffer.add_string buf "\n  },\n";
  Buffer.add_string buf "  \"entries\": [\n";
  let entries = List.rev !json_entries in
  List.iteri
    (fun i (fig, row, series, s) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"figure\": \"%s\", \"row\": \"%s\", \"series\": \"%s\", \
            \"wall_ms_per_update\": %s, \"cpu_ms_per_update\": %s}%s\n"
           fig row series (json_float s.wall_ms) (json_float s.cpu_ms)
           (if i = List.length entries - 1 then "" else ",")))
    entries;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\nwrote %s\n" path

let print_header title columns =
  Printf.printf "\n== %s ==\n" title;
  Printf.printf "%-12s %s\n" (List.hd columns)
    (String.concat "" (List.map (Printf.sprintf "%14s") (List.tl columns)))

let print_row label cells =
  Printf.printf "%-12s %s\n%!" label
    (String.concat ""
       (List.map
          (fun v -> if Float.is_nan v then Printf.sprintf "%14s" "-" else Printf.sprintf "%14.3f" v)
          cells))

(* Sample rows print as wall/cpu pairs in one column per series. *)
let print_header_s title columns =
  Printf.printf "\n== %s ==\n" title;
  Printf.printf "%-12s %s\n" (List.hd columns)
    (String.concat "" (List.map (Printf.sprintf "%18s") (List.tl columns)))

let print_row_s label cells =
  Printf.printf "%-12s %s\n%!" label
    (String.concat ""
       (List.map
          (fun s ->
            if Float.is_nan s.wall_ms then Printf.sprintf "%18s" "-"
            else
              Printf.sprintf "%18s"
                (Printf.sprintf "%.2f/%.2f" s.wall_ms s.cpu_ms))
          cells))

(* --- Figure 17: varying the number of triggers --- *)

let fig17 ~full =
  let base = if full then Workloadlib.Workload.paper_defaults else Workloadlib.Workload.quick_defaults in
  let counts =
    if full then [ 1; 10; 100; 1_000; 10_000; 100_000 ] else [ 1; 10; 100; 1_000; 4_000 ]
  in
  (* UNGROUPED evaluates one plan set per trigger per update; cap it so the
     sweep terminates (the paper's graph shows it diverging anyway) *)
  let ungrouped_cap = if full then 2_000 else 500 in
  (* GRP-interp is GROUPED with plan compilation off: every firing goes
     through the Ra_eval interpreter, i.e. the pre-compilation engine. *)
  let interp_tuning = { Runtime.default_tuning with Runtime.compile_plans = false } in
  print_header_s "Figure 17: number of triggers vs avg time per update (wall/cpu ms)"
    [ "#triggers"; "UNGROUPED"; "GROUPED"; "GROUPED-AGG"; "GRP-interp" ];
  List.iter
    (fun n ->
      let row = string_of_int n in
      let rec17 series s = record ~fig:"17" ~row ~series s in
      let p = { base with Workloadlib.Workload.num_triggers = n; num_satisfied = min n 20 } in
      let updates = if n > 1000 then 10 else 30 in
      let ungrouped =
        rec17 "UNGROUPED"
          (if n <= ungrouped_cap then time_point ~updates p Runtime.Ungrouped
           else nan_sample)
      in
      let grouped = rec17 "GROUPED" (time_point ~updates p Runtime.Grouped) in
      let grouped_agg = rec17 "GROUPED-AGG" (time_point ~updates p Runtime.Grouped_agg) in
      let interp =
        rec17 "GROUPED-interp"
          (time_point ~updates ~tuning:interp_tuning p Runtime.Grouped)
      in
      print_row_s row [ ungrouped; grouped; grouped_agg; interp ])
    counts;
  let sp = fig17_grouped_speedup () in
  if not (Float.is_nan sp) then
    Printf.printf "GROUPED compiled-vs-interpreted speedup (wall): %.2fx\n%!" sp

(* --- Figure 18: varying the hierarchy depth --- *)

let fig18 ~full =
  let base = if full then Workloadlib.Workload.paper_defaults else Workloadlib.Workload.quick_defaults in
  print_header_s "Figure 18: hierarchy depth vs avg time per update (wall/cpu ms)"
    [ "depth"; "GROUPED"; "GROUPED-AGG" ];
  List.iter
    (fun d ->
      let row = string_of_int d in
      let p = { base with Workloadlib.Workload.depth = d } in
      print_row_s row
        [ record ~fig:"18" ~row ~series:"GROUPED" (time_point p Runtime.Grouped);
          record ~fig:"18" ~row ~series:"GROUPED-AGG" (time_point p Runtime.Grouped_agg);
        ])
    [ 2; 3; 4; 5 ]

(* --- Figure 22: varying the fanout (leaf tuples per XML element) --- *)

let fig22 ~full =
  let base = if full then Workloadlib.Workload.paper_defaults else Workloadlib.Workload.quick_defaults in
  let fanouts = if full then [ 16; 32; 64; 128; 256; 512; 1024 ] else [ 16; 32; 64; 128; 256 ] in
  print_header_s "Figure 22: fanout vs avg time per update (wall/cpu ms)"
    [ "fanout"; "GROUPED"; "GROUPED-AGG" ];
  List.iter
    (fun f ->
      let row = string_of_int f in
      let p = { base with Workloadlib.Workload.fanout = f } in
      print_row_s row
        [ record ~fig:"22" ~row ~series:"GROUPED" (time_point p Runtime.Grouped);
          record ~fig:"22" ~row ~series:"GROUPED-AGG" (time_point p Runtime.Grouped_agg);
        ])
    fanouts

(* --- Figure 23: varying the number of leaf tuples (database size) --- *)

let fig23 ~full =
  let base = if full then Workloadlib.Workload.paper_defaults else Workloadlib.Workload.quick_defaults in
  let sizes =
    if full then [ 32_000; 64_000; 128_000; 256_000; 512_000; 1_024_000 ]
    else [ 8_000; 16_000; 32_000; 64_000 ]
  in
  (* MATERIALIZED recomputes the whole view per update: keep it to sizes
     where that is bearable, to show the contrast *)
  let mat_cap = if full then 128_000 else 32_000 in
  print_header_s "Figure 23: leaf tuples vs avg time per update (wall/cpu ms)"
    [ "leaves"; "GROUPED"; "GROUPED-AGG"; "MATERIALIZED" ];
  List.iter
    (fun n ->
      let row = string_of_int n in
      let p = { base with Workloadlib.Workload.leaf_tuples = n } in
      let mat =
        record ~fig:"23" ~row ~series:"MATERIALIZED"
          (if n <= mat_cap then
             time_point ~updates:5
               { p with Workloadlib.Workload.num_triggers = 1; num_satisfied = 1 }
               Runtime.Materialized
           else nan_sample)
      in
      print_row_s row
        [ record ~fig:"23" ~row ~series:"GROUPED" (time_point p Runtime.Grouped);
          record ~fig:"23" ~row ~series:"GROUPED-AGG" (time_point p Runtime.Grouped_agg);
          mat;
        ])
    sizes

(* --- Figure 24: varying the number of satisfied triggers --- *)

let fig24 ~full =
  let base = if full then Workloadlib.Workload.paper_defaults else Workloadlib.Workload.quick_defaults in
  print_header_s "Figure 24: satisfied triggers vs avg time per update (wall/cpu ms)"
    [ "satisfied"; "GROUPED"; "GROUPED-AGG" ];
  List.iter
    (fun s ->
      let row = string_of_int s in
      let p = { base with Workloadlib.Workload.num_satisfied = s } in
      print_row_s row
        [ record ~fig:"24" ~row ~series:"GROUPED" (time_point p Runtime.Grouped);
          record ~fig:"24" ~row ~series:"GROUPED-AGG" (time_point p Runtime.Grouped_agg);
        ])
    [ 1; 20; 40; 60; 80; 100 ]

(* --- §6 intro: trigger compile time --- *)

let compile_time ~full =
  let base = if full then Workloadlib.Workload.paper_defaults else Workloadlib.Workload.quick_defaults in
  print_header "Trigger compile time (ms; the paper reports ~100 ms)"
    [ "depth"; "first"; "subsequent" ];
  List.iter
    (fun d ->
      let p = { base with Workloadlib.Workload.depth = d; Workloadlib.Workload.leaf_tuples = 4_000 } in
      let built = Workloadlib.Workload.build p in
      let mgr = mgr_of Runtime.Grouped built in
      let t0 = Sys.time () in
      Runtime.create_trigger mgr
        "CREATE TRIGGER c0 AFTER UPDATE ON view('doc')/e1 WHERE NEW_NODE/@name = 'x' DO record(NEW_NODE)";
      let t1 = Sys.time () in
      let n = 50 in
      for i = 1 to n do
        Runtime.create_trigger mgr
          (Printf.sprintf
             "CREATE TRIGGER c%d AFTER UPDATE ON view('doc')/e1 WHERE NEW_NODE/@name = 'x%d' DO record(NEW_NODE)"
             i i)
      done;
      let t2 = Sys.time () in
      print_row (string_of_int d)
        [ (t1 -. t0) *. 1000.0; (t2 -. t1) *. 1000.0 /. float_of_int n ])
    [ 2; 3; 4; 5 ]

(* --- ablation: the optimizer passes DESIGN.md calls out --- *)

let ablation ~full =
  let base = if full then Workloadlib.Workload.paper_defaults else Workloadlib.Workload.quick_defaults in
  let p = { base with Workloadlib.Workload.leaf_tuples = 8_000; num_triggers = 100 } in
  print_header_s
    "Ablation: optimizer passes (GROUPED, 8k leaves, 100 triggers; wall/cpu ms/update)"
    [ "variant"; "ms" ];
  List.iter
    (fun (label, tuning) ->
      let s = time_point ~updates:10 ~tuning p Runtime.Grouped in
      print_row_s label [ record ~fig:"ablation" ~row:label ~series:"GROUPED" s ])
    [ ("all-on", Runtime.default_tuning);
      ("no-sharing", { Runtime.default_tuning with Runtime.share_subplans = false });
      ( "no-pushdown",
        { Runtime.default_tuning with Runtime.push_affected_keys = false } );
      ("no-compile", { Runtime.default_tuning with Runtime.compile_plans = false });
      ( "none",
        { Runtime.default_tuning with
          Runtime.push_affected_keys = false;
          share_subplans = false;
          compile_plans = false;
        } );
    ]

(* --- recovery_time: durability overhead is not a paper figure, but the
   north star (production service) needs restart cost to be predictable:
   recovery wall-clock must scale with the WAL tail, not the database --- *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let recovery_dir name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "trigview_recovery_%d_%s" (Unix.getpid ()) name)

(* Build a durable instance, run [before] updates, checkpoint, run [after]
   updates, tear the runtime down, and measure (a) raw database recovery and
   (b) a full [Runtime.reopen] including view/trigger re-arming. *)
let recovery_point p ~dir ~before ~after =
  rm_rf dir;
  let built = Workloadlib.Workload.build p in
  let mgr = mgr_of Runtime.Grouped_agg built in
  Workloadlib.Workload.install_triggers mgr p
    ~target_name:built.Workloadlib.Workload.top_names.(0);
  Runtime.attach_durability ~policy:Durability.Wal.Never mgr ~data_dir:dir;
  for step = 0 to before - 1 do
    Workloadlib.Workload.update_leaf built ~top_index:0 ~step
  done;
  if before > 0 then Runtime.checkpoint mgr;
  for step = before to before + after - 1 do
    Workloadlib.Workload.update_leaf built ~top_index:0 ~step
  done;
  Runtime.detach_durability mgr;  (* closes + syncs the WAL: the "crash" *)
  let wal_kb = float_of_int (Durability.Wal.total_bytes dir) /. 1024.0 in
  let t0 = Unix.gettimeofday () in
  ignore (Durability.Recovery.recover ~data_dir:dir ());
  let t1 = Unix.gettimeofday () in
  let r = Runtime.reopen ~actions:[ ("record", fun _ -> ()) ] ~data_dir:dir () in
  let t2 = Unix.gettimeofday () in
  Runtime.detach_durability r.Runtime.runtime;
  rm_rf dir;
  (wal_kb, (t1 -. t0) *. 1000.0, (t2 -. t1) *. 1000.0)

let recovery_time ~full =
  let base = if full then Workloadlib.Workload.paper_defaults else Workloadlib.Workload.quick_defaults in
  let p =
    { base with
      Workloadlib.Workload.leaf_tuples = (if full then 32_000 else 4_000);
      num_triggers = (if full then 1_000 else 100);
      num_satisfied = 10;
    }
  in
  print_header "recovery_time: WAL tail length vs recovery wall-clock"
    [ "updates"; "wal KB"; "recover ms"; "reopen ms" ];
  List.iter
    (fun n ->
      let wal_kb, rec_ms, reopen_ms =
        recovery_point p ~dir:(recovery_dir (Printf.sprintf "wal%d" n)) ~before:0
          ~after:n
      in
      print_row (string_of_int n) [ wal_kb; rec_ms; reopen_ms ])
    (if full then [ 0; 1_000; 10_000; 40_000 ] else [ 0; 250; 1_000; 4_000 ]);
  let total = if full then 20_000 else 2_000 in
  print_header
    (Printf.sprintf
       "recovery_time: snapshot age (updates since checkpoint, %d total)" total)
    [ "age"; "wal KB"; "recover ms"; "reopen ms" ];
  List.iter
    (fun age ->
      let wal_kb, rec_ms, reopen_ms =
        recovery_point p ~dir:(recovery_dir (Printf.sprintf "age%d" age))
          ~before:(total - age) ~after:age
      in
      print_row (string_of_int age) [ wal_kb; rec_ms; reopen_ms ])
    (if full then [ 0; 2_000; 10_000; 20_000 ] else [ 0; 200; 1_000; 2_000 ])

(* --- phases: where does an update's wall time go, per strategy ---

   One traced sweep per strategy; the span totals (DML bookkeeping, SQL
   trigger firing, plan execution, fragment execution, tagging, action
   dispatch) are aggregated by span name.  Spans nest — "trigger" contains
   "plan.exec" which contains "frag.exec" — so the columns are a breakdown,
   not a disjoint partition. *)

let phase_names = [ "dml"; "trigger"; "plan.exec"; "frag.exec"; "tagger"; "dispatch" ]

let phases ~full =
  let base = if full then Workloadlib.Workload.paper_defaults else Workloadlib.Workload.quick_defaults in
  let p = { base with Workloadlib.Workload.num_triggers = 100; num_satisfied = 10 } in
  let updates = 20 in
  print_header
    (Printf.sprintf "Per-phase wall time (ms over %d updates, tracing on)" updates)
    ("strategy" :: phase_names);
  List.iter
    (fun (series, strategy, tuning) ->
      let built = Workloadlib.Workload.build p in
      let mgr = mgr_of ?tuning strategy built in
      Workloadlib.Workload.install_triggers mgr p
        ~target_name:built.Workloadlib.Workload.top_names.(0);
      for step = 0 to 2 do
        Workloadlib.Workload.update_leaf built ~top_index:0 ~step
      done;
      Runtime.set_tracing mgr true;
      for step = 3 to 3 + updates - 1 do
        Workloadlib.Workload.update_leaf built ~top_index:0 ~step
      done;
      Runtime.set_tracing mgr false;
      let tracer = Relkit.Database.tracer (Runtime.database mgr) in
      let totals = Hashtbl.create 8 in
      List.iter
        (fun ev ->
          let name = ev.Obs.Trace.ev_name in
          let prev = Option.value ~default:0L (Hashtbl.find_opt totals name) in
          Hashtbl.replace totals name (Int64.add prev ev.Obs.Trace.ev_dur_ns))
        (Obs.Trace.events tracer);
      let row =
        List.map
          (fun name ->
            ( name,
              Int64.to_float (Option.value ~default:0L (Hashtbl.find_opt totals name))
              /. 1e6 ))
          phase_names
      in
      phase_entries := (series, row) :: !phase_entries;
      print_row series (List.map snd row))
    [ ("GROUPED", Runtime.Grouped, None);
      ("GROUPED-AGG", Runtime.Grouped_agg, None);
      ( "GROUPED-interp",
        Runtime.Grouped,
        Some { Runtime.default_tuning with Runtime.compile_plans = false } );
    ]

(* --- overhead: cost of leaving span tracing / firing auditing enabled --- *)

let overhead ~full =
  let base = if full then Workloadlib.Workload.paper_defaults else Workloadlib.Workload.quick_defaults in
  let p = { base with Workloadlib.Workload.num_triggers = 100; num_satisfied = 10 } in
  print_header_s
    "Tracing / audit overhead (GROUPED, 100 triggers; wall/cpu ms per update)"
    [ "variant"; "GROUPED" ];
  List.iter
    (fun (label, trace, audit) ->
      let s = time_point ~updates:20 ~trace ~audit p Runtime.Grouped in
      print_row_s label [ record ~fig:"overhead" ~row:label ~series:"GROUPED" s ])
    [ ("baseline", false, false);
      ("tracing-on", true, false);
      ("audit-on", false, true);
    ]

(* --- view_update: write-through view DML vs direct base DML (PR 6) ---

   Not a paper figure: it gates the updatable-view translator.  The same
   leaf-price updates run (a) as direct base-table UPDATEs and (b) as
   REPLACE NODE view DML through the Viewupdate planner — parse, path
   composition, anchoring, the static safety proof, then the identical
   base UPDATE — with the full trigger load installed on both.  The
   planner work is per-statement and data-independent, so the translation
   must stay within a few percent of direct DML; CI gates it at <= 15%. *)

let view_update_setup p ~via_view =
  let built = Workloadlib.Workload.build p in
  let mgr = mgr_of Runtime.Grouped_agg built in
  Workloadlib.Workload.install_triggers mgr p
    ~target_name:built.Workloadlib.Workload.top_names.(0);
  let leaves = built.Workloadlib.Workload.leaf_ids_of_top.(0) in
  let leaf_table = Workloadlib.Workload.table_name p.Workloadlib.Workload.depth in
  let apply step price =
    let leaf = leaves.(step mod Array.length leaves) in
    if via_view then
      ignore
        (Viewupdate.execute mgr
           (Printf.sprintf
              "REPLACE NODE view('doc')/e1/e2/e3[./id = '%s'] WITH \
               <e3><id>%s</id><price>%d</price></e3>"
              leaf leaf price))
    else
      ignore
        (Relkit.Database.update_pk built.Workloadlib.Workload.db ~table:leaf_table
           ~pk:[ Relkit.Value.String leaf ]
           ~set:(fun row ->
             let row = Array.copy row in
             row.(Array.length row - 1) <- Relkit.Value.Float (float_of_int price);
             row))
  in
  (mgr, apply)

let view_update_fig ~full =
  let base =
    if full then Workloadlib.Workload.paper_defaults else Workloadlib.Workload.quick_defaults
  in
  let p =
    { base with Workloadlib.Workload.num_triggers = (if full then 1_000 else 200);
      num_satisfied = 10 }
  in
  (* per-update cost is well under a millisecond, so a short run is mostly
     scheduler noise: time enough updates for a stable per-update figure, and
     interleave the two variants in batches so machine-load drift during the
     run lands on both sides instead of skewing the ratio *)
  let updates = if full then 200 else 400 in
  let batches = 8 in
  let batch = updates / batches in
  print_header_s
    "View-update translation overhead (GROUPED-AGG; wall/cpu ms per update)"
    [ "variant"; "GROUPED-AGG" ];
  let dmgr, direct_apply = view_update_setup p ~via_view:false in
  let vmgr, view_apply = view_update_setup p ~via_view:true in
  (* warm up with changing values so neither side plans a no-op *)
  for step = 0 to 2 do
    direct_apply step (500 + step);
    view_apply step (500 + step)
  done;
  Runtime.reset_stats dmgr;
  Runtime.reset_stats vmgr;
  let timed apply step0 n =
    let w0 = Monotonic_clock.now () in
    let c0 = Sys.time () in
    for step = step0 to step0 + n - 1 do apply step (1000 + step) done;
    let c1 = Sys.time () in
    let w1 = Monotonic_clock.now () in
    (Int64.to_float (Int64.sub w1 w0) /. 1e6, (c1 -. c0) *. 1000.0)
  in
  let dwall = ref 0.0 and dcpu = ref 0.0 and vwall = ref 0.0 and vcpu = ref 0.0 in
  for b = 0 to batches - 1 do
    let step0 = 3 + (b * batch) in
    let w, c = timed direct_apply step0 batch in
    dwall := !dwall +. w;
    dcpu := !dcpu +. c;
    let w, c = timed view_apply step0 batch in
    vwall := !vwall +. w;
    vcpu := !vcpu +. c
  done;
  let n = float_of_int (batches * batch) in
  let direct = { wall_ms = !dwall /. n; cpu_ms = !dcpu /. n } in
  let view = { wall_ms = !vwall /. n; cpu_ms = !vcpu /. n } in
  print_row_s "direct-dml"
    [ record ~fig:"view_update" ~row:"direct-dml" ~series:"GROUPED-AGG" direct ];
  print_row_s "view-dml"
    [ record ~fig:"view_update" ~row:"view-dml" ~series:"GROUPED-AGG" view ];
  let pct =
    if direct.wall_ms > 0.0 then (view.wall_ms -. direct.wall_ms) /. direct.wall_ms *. 100.0
    else Float.nan
  in
  let ups s = if s.wall_ms > 0.0 then 1000.0 /. s.wall_ms else Float.nan in
  Printf.printf
    "view-DML overhead vs direct base DML: %.2f%% (%.0f vs %.0f updates/sec)\n" pct
    (ups view) (ups direct);
  if !json_requested then begin
    let oc = open_out "BENCH_6.json" in
    Printf.fprintf oc
      "{\n\
      \  \"mode\": \"%s\",\n\
      \  \"view_update_overhead_pct\": %s,\n\
      \  \"direct_updates_per_sec\": %s,\n\
      \  \"view_dml_updates_per_sec\": %s,\n\
      \  \"direct_wall_ms_per_update\": %s,\n\
      \  \"view_dml_wall_ms_per_update\": %s\n\
       }\n"
      (if full then "full" else "quick")
      (json_float pct) (json_float (ups direct)) (json_float (ups view))
      (json_float direct.wall_ms) (json_float view.wall_ms);
    close_out oc;
    Printf.printf "wrote BENCH_6.json\n"
  end

(* --- fanout: subscription fan-out and delivery throughput (PR 5) ---

   Not a paper figure: it sizes the notification-delivery subsystem layered
   on the trigger runtime.  N subscribers watch the same hot top-level
   element; each DML statement fires N subscription triggers, and a flush
   drains every queue into a counting callback sink.  Updates run in
   batches of [batch] per flush, so the COALESCE-on series collapses the
   batch's same-key notifications to one per subscriber per window while
   COALESCE-off delivers every event — same DML cost, ~1/batch the
   deliveries.  The "overhead" rows compare the full subscription path
   against bare action dispatch with identical trigger structure and
   arguments (DO record(OLD_NODE, NEW_NODE)), isolating the cost of
   notification construction + queueing + delivery. *)

let fanout_batch = 5

let fanout_params ~full =
  { Workloadlib.Workload.quick_defaults with
    Workloadlib.Workload.leaf_tuples = (if full then 8_000 else 2_000);
    fanout = 16;
    num_triggers = 0;
    num_satisfied = 0;
  }

let fanout_run p ~subs ~coalesce =
  let built = Workloadlib.Workload.build p in
  let mgr = mgr_of Runtime.Grouped built in
  let hub = Subscribe.attach mgr in
  let delivered = ref 0 in
  Subscribe.add_callback hub (fun _ -> incr delivered);
  let target = built.Workloadlib.Workload.top_names.(0) in
  for i = 0 to subs - 1 do
    Subscribe.subscribe hub
      (Printf.sprintf
         "fan%d AFTER UPDATE ON view('doc')/e1 WHERE NEW_NODE/@name = '%s' \
          QUEUE 1024 OVERFLOW drop-oldest COALESCE %s"
         i target
         (if coalesce then "on" else "off"))
  done;
  for step = 0 to fanout_batch - 1 do
    Workloadlib.Workload.update_leaf built ~top_index:0 ~step
  done;
  ignore (Subscribe.flush hub);
  delivered := 0;
  let rounds = if subs >= 1_000 then 3 else 6 in
  let w0 = Monotonic_clock.now () in
  let c0 = Sys.time () in
  for r = 0 to rounds - 1 do
    for b = 0 to fanout_batch - 1 do
      Workloadlib.Workload.update_leaf built ~top_index:0
        ~step:(fanout_batch + (r * fanout_batch) + b)
    done;
    ignore (Subscribe.flush hub)
  done;
  let c1 = Sys.time () in
  let w1 = Monotonic_clock.now () in
  let wall_ms = Int64.to_float (Int64.sub w1 w0) /. 1e6 in
  let updates = float_of_int (rounds * fanout_batch) in
  let nps =
    if wall_ms > 0.0 then float_of_int !delivered /. (wall_ms /. 1000.0)
    else Float.nan
  in
  ( { wall_ms = wall_ms /. updates; cpu_ms = (c1 -. c0) *. 1000.0 /. updates },
    !delivered,
    nps )

let fanout_overhead p =
  let updates = 60 in
  let n = 20 in
  let measure_once install flush_after =
    let built = Workloadlib.Workload.build p in
    let mgr = mgr_of Runtime.Grouped built in
    let flush = install mgr built in
    for step = 0 to 2 do
      Workloadlib.Workload.update_leaf built ~top_index:0 ~step
    done;
    flush ();
    (* the gate compares two ~30 us/update deltas: compact first so major
       GC debt from earlier sweeps doesn't land inside either timed loop *)
    Gc.compact ();
    let w0 = Monotonic_clock.now () in
    let c0 = Sys.time () in
    for step = 3 to 3 + updates - 1 do
      Workloadlib.Workload.update_leaf built ~top_index:0 ~step;
      if flush_after then flush ()
    done;
    let c1 = Sys.time () in
    let w1 = Monotonic_clock.now () in
    let u = float_of_int updates in
    { wall_ms = Int64.to_float (Int64.sub w1 w0) /. 1e6 /. u;
      cpu_ms = (c1 -. c0) *. 1000.0 /. u;
    }
  in
  let install_bare mgr built =
    let target = built.Workloadlib.Workload.top_names.(0) in
    for i = 0 to n - 1 do
      Runtime.create_trigger mgr
        (Printf.sprintf
           "CREATE TRIGGER base%d AFTER UPDATE ON view('doc')/e1 WHERE \
            NEW_NODE/@name = '%s' DO record(OLD_NODE, NEW_NODE)"
           i target)
    done;
    fun () -> ()
  in
  let install_sub mgr built =
    let hub = Subscribe.attach mgr in
    Subscribe.add_callback hub (fun _ -> ());
    let target = built.Workloadlib.Workload.top_names.(0) in
    for i = 0 to n - 1 do
      Subscribe.subscribe hub
        (Printf.sprintf
           "ovh%d AFTER UPDATE ON view('doc')/e1 WHERE NEW_NODE/@name = '%s' \
            QUEUE 4096 COALESCE off"
           i target)
    done;
    fun () -> ignore (Subscribe.flush hub)
  in
  (* best of 5, alternating the two variants so slow drift (CPU frequency,
     heap growth) lands on both sides equally; timing noise is strictly
     additive, so the minimum is the faithful estimate of each path *)
  let best a b = if Float.is_nan a.wall_ms || b.wall_ms < a.wall_ms then b else a in
  let bare = ref nan_sample and sub = ref nan_sample in
  for _ = 1 to 5 do
    bare := best !bare (measure_once install_bare false);
    sub := best !sub (measure_once install_sub true)
  done;
  (!bare, !sub)

let fanout_fig ~full =
  let p = fanout_params ~full in
  let counts = if full then [ 10; 100; 1_000; 4_000 ] else [ 10; 100; 1_000 ] in
  (* the overhead comparison runs first (cold, small heap) and at the
     standard workload scale (same as the audit-overhead gate) so the
     delivery cost is measured against a realistic per-statement baseline,
     not the tiny fan-out document *)
  let base =
    if full then Workloadlib.Workload.paper_defaults
    else Workloadlib.Workload.quick_defaults
  in
  let bare, sub =
    fanout_overhead
      { base with Workloadlib.Workload.num_triggers = 0; num_satisfied = 0 }
  in
  print_header_s
    (Printf.sprintf
       "fanout: subscribers vs avg time per update (wall/cpu ms; %d updates \
        per flush window)"
       fanout_batch)
    [ "#subs"; "COALESCE-off"; "COALESCE-on" ];
  List.iter
    (fun n ->
      let row = string_of_int n in
      let s_off, d_off, nps_off = fanout_run p ~subs:n ~coalesce:false in
      let s_on, d_on, nps_on = fanout_run p ~subs:n ~coalesce:true in
      ignore (record ~fig:"fanout" ~row ~series:"coalesce-off" s_off);
      ignore (record ~fig:"fanout" ~row ~series:"coalesce-on" s_on);
      fanout_throughput :=
        (row, "coalesce-on", nps_on)
        :: (row, "coalesce-off", nps_off)
        :: !fanout_throughput;
      print_row_s row [ s_off; s_on ];
      Printf.printf
        "             delivered: off=%d (%.0f notifs/s)  on=%d (%.0f notifs/s)\n%!"
        d_off nps_off d_on nps_on)
    counts;
  ignore (record ~fig:"fanout" ~row:"overhead" ~series:"bare-dispatch" bare);
  ignore (record ~fig:"fanout" ~row:"overhead" ~series:"subscription" sub);
  print_row_s "overhead" [ bare; sub ];
  let pct = subscription_overhead_pct () in
  if not (Float.is_nan pct) then
    Printf.printf
      "subscription-path overhead vs bare dispatch (20 subscribers): %.2f%%\n%!"
      pct

(* --- scaling: the multicore firing pipeline (PR 7) ---

   Not a paper figure: it sizes the domain pool.  1000 SQL triggers (20
   satisfied) and 1000 subscribers watch the hot top-level element; the
   subscribers are spread over four structurally distinct WHERE shapes, so
   GROUPED forms four trigger groups whose delta queries run in parallel
   on the pool, and each group's ~250-member fan-out is sharded across
   domains too.  At domains > 1 the hub's writer domain takes the sink I/O
   off the firing thread; [drain_writer] before the stop timestamp keeps
   the measured window honest.  Reported as trigger firings (dispatched
   members) per second vs the domain count, COALESCE on and off;
   [parallel_speedup] is the 4-domain / 1-domain ratio on the COALESCE-off
   series and is gated (>= 1.5x on 4-vCPU CI runners). *)

let scaling_batch = 5

let scaling_run p ~domains ~subs ~triggers ~satisfied ~coalesce ~rounds =
  let built = Workloadlib.Workload.build p in
  let tuning = { Runtime.default_tuning with Runtime.domains } in
  let mgr = Runtime.create ~strategy:Runtime.Grouped ~tuning built.Workloadlib.Workload.db in
  Runtime.define_view mgr ~name:"doc" built.Workloadlib.Workload.view_text;
  (* parallel-safe stand-in for the shared [record] action: member shards
     may bump it concurrently *)
  let recorded = Atomic.make 0 in
  Runtime.register_action ~parallel_safe:true mgr ~name:"record"
    (fun _ -> Atomic.incr recorded);
  Workloadlib.Workload.install_triggers mgr
    { p with Workloadlib.Workload.num_triggers = triggers; num_satisfied = satisfied }
    ~target_name:built.Workloadlib.Workload.top_names.(0);
  let hub = Subscribe.attach mgr in
  let delivered = Atomic.make 0 in
  Subscribe.add_callback hub (fun _ -> Atomic.incr delivered);
  if domains > 1 then Subscribe.start_writer hub;
  let target = built.Workloadlib.Workload.top_names.(0) in
  let e2 = Workloadlib.Workload.elem_name 2 in
  (* four condition families = four GROUPED trigger groups; the extra
     conjuncts are vacuously true, so every subscriber fires per update *)
  for i = 0 to subs - 1 do
    let conjuncts =
      List.init (i mod 4) (fun _ -> Printf.sprintf " and count(NEW_NODE/%s) >= 0" e2)
    in
    Subscribe.subscribe hub
      (Printf.sprintf
         "scale%d AFTER UPDATE ON view('doc')/e1 WHERE NEW_NODE/@name = '%s'%s \
          QUEUE 8192 OVERFLOW drop-oldest COALESCE %s"
         i target
         (String.concat "" conjuncts)
         (if coalesce then "on" else "off"))
  done;
  (* warm-up window: fault in plans, shards, pool workers *)
  for step = 0 to scaling_batch - 1 do
    Workloadlib.Workload.update_leaf built ~top_index:0 ~step
  done;
  ignore (Subscribe.flush hub);
  Subscribe.drain_writer hub;
  Runtime.reset_stats mgr;
  Atomic.set delivered 0;
  let w0 = Monotonic_clock.now () in
  let c0 = Sys.time () in
  for r = 0 to rounds - 1 do
    for b = 0 to scaling_batch - 1 do
      Workloadlib.Workload.update_leaf built ~top_index:0
        ~step:(scaling_batch + (r * scaling_batch) + b)
    done;
    ignore (Subscribe.flush hub)
  done;
  Subscribe.drain_writer hub;
  let c1 = Sys.time () in
  let w1 = Monotonic_clock.now () in
  Subscribe.stop_writer hub;
  let wall_ms = Int64.to_float (Int64.sub w1 w0) /. 1e6 in
  let updates = float_of_int (rounds * scaling_batch) in
  let firings = (Runtime.stats mgr).Runtime.actions_dispatched in
  let per_sec n =
    if wall_ms > 0.0 then float_of_int n /. (wall_ms /. 1000.0) else Float.nan
  in
  ( { wall_ms = wall_ms /. updates; cpu_ms = (c1 -. c0) *. 1000.0 /. updates },
    per_sec firings,
    per_sec (Atomic.get delivered) )

let scaling_fig ~full =
  let p =
    { Workloadlib.Workload.quick_defaults with
      Workloadlib.Workload.leaf_tuples = (if full then 8_000 else 2_000);
      fanout = 16;
      num_triggers = 0;
      num_satisfied = 0;
    }
  in
  let subs = 1_000 and triggers = 1_000 and satisfied = 20 in
  let rounds = if full then 8 else 4 in
  let domain_counts = [ 1; 2; 4; 8 ] in
  print_header_s
    (Printf.sprintf
       "scaling: domains vs avg time per update (wall/cpu ms; %d triggers, %d \
        subscribers, %d updates per flush window)"
       triggers subs scaling_batch)
    [ "#domains"; "COALESCE-off"; "COALESCE-on" ];
  let rates = ref [] in
  List.iter
    (fun domains ->
      let row = string_of_int domains in
      let s_off, fps_off, dps_off =
        scaling_run p ~domains ~subs ~triggers ~satisfied ~coalesce:false ~rounds
      in
      let s_on, fps_on, dps_on =
        scaling_run p ~domains ~subs ~triggers ~satisfied ~coalesce:true ~rounds
      in
      ignore (record ~fig:"scaling" ~row ~series:"coalesce-off" s_off);
      ignore (record ~fig:"scaling" ~row ~series:"coalesce-on" s_on);
      rates := (domains, fps_off, dps_off, fps_on, dps_on) :: !rates;
      print_row_s row [ s_off; s_on ];
      Printf.printf
        "             firings/s: off=%.0f on=%.0f   delivered/s: off=%.0f on=%.0f\n%!"
        fps_off fps_on dps_off dps_on)
    domain_counts;
  let rates = List.rev !rates in
  let rate_at d =
    List.find_map
      (fun (d', fps, _, _, _) ->
        if d = d' && not (Float.is_nan fps) then Some fps else None)
      rates
  in
  let speedup =
    match rate_at 1, rate_at 4 with
    | Some r1, Some r4 when r1 > 0.0 -> r4 /. r1
    | _ -> Float.nan
  in
  if not (Float.is_nan speedup) then
    Printf.printf "parallel speedup (4 domains vs 1, COALESCE off): %.2fx\n%!" speedup;
  if !json_requested then begin
    let oc = open_out "BENCH_7.json" in
    let series =
      String.concat ",\n"
        (List.map
           (fun (d, fps_off, dps_off, fps_on, dps_on) ->
             Printf.sprintf
               "    {\"domains\": %d, \"firings_per_sec_off\": %s, \
                \"delivered_per_sec_off\": %s, \"firings_per_sec_on\": %s, \
                \"delivered_per_sec_on\": %s}"
               d (json_float fps_off) (json_float dps_off) (json_float fps_on)
               (json_float dps_on))
           rates)
    in
    Printf.fprintf oc
      "{\n\
      \  \"mode\": \"%s\",\n\
      \  \"triggers\": %d,\n\
      \  \"subscribers\": %d,\n\
      \  \"parallel_speedup\": %s,\n\
      \  \"series\": [\n%s\n  ]\n\
       }\n"
      (if full then "full" else "quick")
      triggers subs (json_float speedup) series;
    close_out oc;
    Printf.printf "wrote BENCH_7.json\n"
  end

(* --- PR 8 figure: static query–update independence --- *)

(* N triggers each watch a distinct region through a constant path predicate
   ([./region = 'rK']); every statement updates the single r0 row.  With
   pruning the firing path proves the other N-1 triggers independent before
   any delta plan runs (their signatures carry [region = 'rK'] equality
   filters, so the indexed bucket never even surfaces them as candidates),
   and per-statement cost should stay near-flat from 1 to 1000 triggers.
   Without pruning each statement pays N delta-plan runs.  The row count is
   fixed — one row per region, independent of N — so data size never
   confounds the sweep. *)

let independence_regions = 1_000

let independence_build ~independence n =
  let db = Relkit.Database.create () in
  Relkit.Database.create_table db
    (Relkit.Schema.make ~name:"flat"
       ~columns:
         [ ("id", Relkit.Schema.TString); ("region", Relkit.Schema.TString);
           ("val", Relkit.Schema.TFloat) ]
       ~primary_key:[ "id" ] ());
  Relkit.Database.load_rows db ~table:"flat"
    (List.init independence_regions (fun i ->
         [| Relkit.Value.String (Printf.sprintf "f%d" i);
            Relkit.Value.String (Printf.sprintf "r%d" i);
            Relkit.Value.Float 0.0 |]));
  let tuning = { Runtime.default_tuning with Runtime.independence } in
  let mgr = Runtime.create ~strategy:Runtime.Grouped ~tuning db in
  Runtime.define_view mgr ~name:"doc"
    {|<doc>{for $r in view("default")/flat/row
      return <item><region>{$r/region}</region><val>{$r/val}</val></item>}</doc>|};
  Runtime.register_action mgr ~name:"record" (fun _ -> incr dispatched);
  for k = 0 to n - 1 do
    Runtime.create_trigger mgr
      (Printf.sprintf
         "CREATE TRIGGER ind%d AFTER UPDATE ON view('doc')/item[./region = \
          'r%d'] DO record(NEW_NODE)"
         k k)
  done;
  db

let independence_point ~independence ~reps ~updates n =
  let db = independence_build ~independence n in
  let step = ref 0 in
  let run_window () =
    let w0 = Monotonic_clock.now () in
    let c0 = Sys.time () in
    for _ = 1 to updates do
      incr step;
      ignore
        (Relkit.Database.update_rows db ~table:"flat"
           ~where:(fun r -> Relkit.Value.equal r.(0) (Relkit.Value.String "f0"))
           ~set:(fun r ->
             let r = Array.copy r in
             r.(2) <- Relkit.Value.Float (float_of_int !step);
             r))
    done;
    let c1 = Sys.time () in
    let w1 = Monotonic_clock.now () in
    let nf = float_of_int updates in
    { wall_ms = Int64.to_float (Int64.sub w1 w0) /. 1e6 /. nf;
      cpu_ms = (c1 -. c0) *. 1000.0 /. nf;
    }
  in
  (* warm up (fault in plans and indexes), then keep the best window: the
     min is the standard noise-robust point estimate for a fixed workload *)
  ignore (run_window ());
  let best = ref (run_window ()) in
  for _ = 2 to reps do
    let s = run_window () in
    if s.wall_ms < !best.wall_ms then best := s
  done;
  !best

let independence_fig ~full =
  let counts = [ 1; 10; 100; 1_000 ] in
  let reps = if full then 5 else 3 in
  let updates = if full then 60 else 20 in
  print_header_s
    (Printf.sprintf
       "independence: irrelevant triggers vs avg time per update (wall/cpu \
        ms; %d rows, one relevant trigger, best of %d windows)"
       independence_regions reps)
    [ "#triggers"; "pruning-on"; "pruning-off" ];
  let cells = ref [] in
  List.iter
    (fun n ->
      let on = independence_point ~independence:true ~reps ~updates n in
      (* the unpruned series pays n plan runs per statement; shrink its
         window at large n so the sweep stays bounded *)
      let off_updates = max 4 (updates * 10 / n) in
      let off =
        independence_point ~independence:false ~reps ~updates:off_updates n
      in
      ignore
        (record ~fig:"independence" ~row:(string_of_int n) ~series:"pruning-on"
           on);
      ignore
        (record ~fig:"independence" ~row:(string_of_int n)
           ~series:"pruning-off" off);
      cells := (n, on, off) :: !cells;
      print_row_s (string_of_int n) [ on; off ])
    counts;
  let cells = List.rev !cells in
  let on_wall n =
    List.find_map
      (fun (n', on, _) ->
        if n = n' && not (Float.is_nan on.wall_ms) then Some on.wall_ms
        else None)
      cells
  in
  let ratio =
    match on_wall 1, on_wall 1_000 with
    | Some w1, Some w1000 when w1 > 0.0 -> w1000 /. w1
    | _ -> Float.nan
  in
  if not (Float.is_nan ratio) then
    Printf.printf
      "independence flat ratio (pruned, 1000 triggers vs 1): %.3fx\n%!" ratio;
  if !json_requested then begin
    let oc = open_out "BENCH_8.json" in
    let series =
      String.concat ",\n"
        (List.map
           (fun (n, on, off) ->
             Printf.sprintf
               "    {\"triggers\": %d, \"pruned_wall_ms\": %s, \
                \"pruned_cpu_ms\": %s, \"unpruned_wall_ms\": %s, \
                \"unpruned_cpu_ms\": %s}"
               n (json_float on.wall_ms) (json_float on.cpu_ms)
               (json_float off.wall_ms) (json_float off.cpu_ms))
           cells)
    in
    Printf.fprintf oc
      "{\n\
      \  \"mode\": \"%s\",\n\
      \  \"rows\": %d,\n\
      \  \"independence_flat_ratio\": %s,\n\
      \  \"series\": [\n%s\n  ]\n\
       }\n"
      (if full then "full" else "quick")
      independence_regions (json_float ratio) series;
    close_out oc;
    Printf.printf "wrote BENCH_8.json\n"
  end

(* --- advisor: auto-tuned (ANALYZE + TUNE) vs the best fixed strategy ---

   A mixed workload where the Table-2 winner flips mid-run: phase 1 runs
   with a single installed trigger (UNGROUPED wins — GROUPED pays the
   constants-table join for nothing), then the remaining n-1 structurally
   similar triggers arrive (GROUPED wins — UNGROUPED pays n plan runs per
   statement).  Each fixed strategy is timed through both phases; the
   auto run starts on the manager default and calls [tune] at each phase
   boundary, letting the advisor re-arm from observed windowed profiles.
   Auto must hold ≥0.9× the best manual throughput (BENCH_9.json,
   CI-gated). *)

let advisor_trigger_text i const threshold =
  Printf.sprintf
    "CREATE TRIGGER bench%d AFTER UPDATE ON view('doc')/%s WHERE \
     NEW_NODE/@name = '%s' and count(NEW_NODE/%s) >= %d DO record(NEW_NODE)"
    i
    (Workloadlib.Workload.elem_name 1)
    const
    (Workloadlib.Workload.elem_name 2)
    threshold

let advisor_install mgr p ~target_name ~from_i ~to_i =
  for i = from_i to to_i do
    if i < p.Workloadlib.Workload.num_satisfied then
      Runtime.create_trigger mgr (advisor_trigger_text i target_name (-i))
    else
      Runtime.create_trigger mgr
        (advisor_trigger_text i (Printf.sprintf "nomatch%d" i) 1)
  done

(* Best-of-[reps] timed windows of [updates] leaf updates (first window is
   the discarded warm-up). *)
let advisor_phase_time built ~updates ~reps =
  let window () =
    let w0 = Monotonic_clock.now () in
    let c0 = Sys.time () in
    for step = 1 to updates do
      Workloadlib.Workload.update_leaf built ~top_index:0 ~step
    done;
    let c1 = Sys.time () in
    let w1 = Monotonic_clock.now () in
    let n = float_of_int updates in
    { wall_ms = Int64.to_float (Int64.sub w1 w0) /. 1e6 /. n;
      cpu_ms = (c1 -. c0) *. 1000.0 /. n;
    }
  in
  ignore (window ());
  let best = ref (window ()) in
  for _ = 2 to reps do
    let s = window () in
    if s.wall_ms < !best.wall_ms then best := s
  done;
  !best

let advisor_fig ~full =
  let n = if full then 1_000 else 200 in
  let updates = if full then 40 else 20 in
  let reps = if full then 4 else 3 in
  let p =
    { Workloadlib.Workload.quick_defaults with
      Workloadlib.Workload.leaf_tuples = (if full then 16_000 else 2_000);
      num_triggers = n;
      num_satisfied = min n 20;
    }
  in
  print_header_s
    (Printf.sprintf
       "advisor: auto-tune vs fixed strategies on a phase-flipping workload \
        (wall/cpu ms per update; 1 then %d triggers, best of %d windows)" n
       reps)
    [ "phase"; "UNGROUPED"; "GROUPED"; "auto" ];
  (* fixed-strategy runs: both phases under one strategy *)
  let manual strategy =
    let built = Workloadlib.Workload.build p in
    let mgr = mgr_of strategy built in
    let target = built.Workloadlib.Workload.top_names.(0) in
    advisor_install mgr p ~target_name:target ~from_i:0 ~to_i:0;
    let t1 = advisor_phase_time built ~updates ~reps in
    advisor_install mgr p ~target_name:target ~from_i:1 ~to_i:(n - 1);
    let tn = advisor_phase_time built ~updates ~reps in
    (t1, tn)
  in
  let u1, un = manual Runtime.Ungrouped in
  let g1, gn = manual Runtime.Grouped in
  (* auto run: manager default GROUPED; the advisor must discover the
     phase-1 singleton wants UNGROUPED, then flip back when the fleet
     arrives *)
  let built = Workloadlib.Workload.build p in
  let mgr = mgr_of Runtime.Grouped built in
  let target = built.Workloadlib.Workload.top_names.(0) in
  advisor_install mgr p ~target_name:target ~from_i:0 ~to_i:0;
  for step = 1 to 5 do
    (* observe before tuning: the advisor models from windowed profiles *)
    Workloadlib.Workload.update_leaf built ~top_index:0 ~step
  done;
  ignore (Runtime.tune mgr);
  let reco_at_1 =
    match Runtime.trigger_strategy mgr "bench0" with
    | Some s -> Runtime.strategy_to_string s
    | None -> "?"
  in
  Printf.printf "phase 1 (1 trigger): advisor re-armed bench0 as %s\n%!"
    reco_at_1;
  let a1 = advisor_phase_time built ~updates ~reps in
  advisor_install mgr p ~target_name:target ~from_i:1 ~to_i:(n - 1);
  for step = 1 to 5 do
    Workloadlib.Workload.update_leaf built ~top_index:0 ~step
  done;
  ignore (Runtime.tune mgr);
  let reco_at_n =
    match Runtime.trigger_strategy mgr "bench0" with
    | Some s -> Runtime.strategy_to_string s
    | None -> "?"
  in
  Printf.printf "phase 2 (%d triggers): advisor re-armed bench0 as %s\n%!" n
    reco_at_n;
  let an = advisor_phase_time built ~updates ~reps in
  print_row_s "1" [ u1; g1; a1 ];
  print_row_s (string_of_int n) [ un; gn; an ];
  List.iter
    (fun (row, series, s) -> ignore (record ~fig:"advisor" ~row ~series s))
    [ ("1", "UNGROUPED", u1); ("1", "GROUPED", g1); ("1", "auto", a1);
      (string_of_int n, "UNGROUPED", un); (string_of_int n, "GROUPED", gn);
      (string_of_int n, "auto", an);
    ];
  (* throughput over the whole run = inverse of the summed per-phase time *)
  let total a b = a.wall_ms +. b.wall_ms in
  let manual_best = Float.min (total u1 un) (total g1 gn) in
  let ratio =
    let auto = total a1 an in
    if auto > 0.0 then manual_best /. auto else Float.nan
  in
  let best_name =
    if total u1 un <= total g1 gn then "UNGROUPED" else "GROUPED"
  in
  Printf.printf
    "auto vs best manual (%s): %.3fx throughput (>= 0.9 required)\n%!"
    best_name ratio;
  if !json_requested then begin
    let oc = open_out "BENCH_9.json" in
    Printf.fprintf oc
      "{\n\
      \  \"mode\": \"%s\",\n\
      \  \"n_triggers\": %d,\n\
      \  \"updates_per_phase\": %d,\n\
      \  \"analyze_reco_at_1\": \"%s\",\n\
      \  \"analyze_reco_at_n\": \"%s\",\n\
      \  \"best_manual\": \"%s\",\n\
      \  \"manual_ungrouped_ms\": [%s, %s],\n\
      \  \"manual_grouped_ms\": [%s, %s],\n\
      \  \"auto_ms\": [%s, %s],\n\
      \  \"auto_vs_best_manual_ratio\": %s\n\
       }\n"
      (if full then "full" else "quick")
      n updates reco_at_1 reco_at_n best_name (json_float u1.wall_ms)
      (json_float un.wall_ms) (json_float g1.wall_ms) (json_float gn.wall_ms)
      (json_float a1.wall_ms) (json_float an.wall_ms) (json_float ratio);
    close_out oc;
    Printf.printf "wrote BENCH_9.json\n"
  end

(* --- http: closed-loop multi-client front-door throughput ---

   N client domains drive the HTTP server over real TCP with a mixed
   workload: RQL view queries, SQL DML (firing triggers through the
   subscription hub into the SSE ring) and long-poll subscription reads,
   while each client also holds one persistent SSE stream open.  The main
   domain pumps [Api.step] — the same single-threaded discipline as the
   CLI — so the measurement includes queueing for the shared event loop.
   Reports requests/sec and per-request latency percentiles
   (BENCH_10.json, CI-gated). *)

let http_catalog_text =
  {|<catalog>
  {for $prodname in distinct(view("default")/product/row/pname)
   let $products := view("default")/product/row[./pname = $prodname]
   let $vendors := view("default")/vendor/row[./pid = $products/pid]
   where count($vendors) >= 2
   return <product name="{$prodname}">
     {for $vendor in $vendors
      return <vendor>{$vendor/*}</vendor>}
   </product>}
</catalog>|}

let http_make_db () =
  let open Relkit in
  let db = Database.create () in
  Database.create_table db
    (Schema.make ~name:"product"
       ~columns:
         [ ("pid", Schema.TString); ("pname", Schema.TString);
           ("mfr", Schema.TString) ]
       ~primary_key:[ "pid" ] ());
  Database.create_table db
    (Schema.make ~name:"vendor"
       ~columns:
         [ ("vid", Schema.TString); ("pid", Schema.TString);
           ("price", Schema.TFloat) ]
       ~primary_key:[ "vid"; "pid" ] ());
  Database.create_index db ~table:"vendor" ~column:"pid";
  Database.insert_rows db ~table:"product"
    [ [| Value.String "P1"; Value.String "CRT 15"; Value.String "Samsung" |];
      [| Value.String "P2"; Value.String "LCD 19"; Value.String "Samsung" |];
    ];
  Database.insert_rows db ~table:"vendor"
    [ [| Value.String "Amazon"; Value.String "P1"; Value.Float 100.0 |];
      [| Value.String "Bestbuy"; Value.String "P1"; Value.Float 120.0 |];
      [| Value.String "Buy.com"; Value.String "P2"; Value.Float 200.0 |];
      [| Value.String "Bestbuy"; Value.String "P2"; Value.Float 180.0 |];
    ];
  db

(* a blocking-socket HTTP client: one request per connection *)
let http_client_request port ~meth ~target ~body =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let req =
    Printf.sprintf "%s %s HTTP/1.1\r\nhost: bench\r\ncontent-length: %d\r\n\r\n%s"
      meth target (String.length body) body
  in
  let rec send off =
    if off < String.length req then
      send (off + Unix.write_substring fd req off (String.length req - off))
  in
  send 0;
  (* read to end of the content-length-framed response *)
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 65536 in
  let find_head () =
    let d = Buffer.contents buf in
    let rec go i =
      if i + 3 >= String.length d then None
      else if String.sub d i 4 = "\r\n\r\n" then Some (d, i)
      else go (i + 1)
    in
    go 0
  in
  let body_len head =
    let lower = String.lowercase_ascii head in
    let key = "content-length:" in
    let rec find i =
      if i + String.length key > String.length lower then 0
      else if String.sub lower i (String.length key) = key then
        let rest = String.sub lower (i + String.length key)
            (String.length lower - i - String.length key) in
        let line = List.hd (String.split_on_char '\r' rest) in
        (match int_of_string_opt (String.trim line) with Some n -> n | None -> 0)
      else find (i + 1)
    in
    find 0
  in
  let rec read_all () =
    match find_head () with
    | Some (d, head_end)
      when String.length d - head_end - 4
           >= body_len (String.sub d 0 head_end) ->
      d
    | _ -> (
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> Buffer.contents buf
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        read_all ())
  in
  read_all ()

let http_percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int (n - 1))))

let http_fig ~full =
  let clients = if full then 8 else 4 in
  let requests = if full then 400 else 120 in
  print_header_s
    (Printf.sprintf
       "http: closed-loop front door, %d client domains x %d mixed requests \
        (query/DML/long-poll + 1 SSE stream each)"
       clients requests)
    [ "metric"; "value" ];
  let db = http_make_db () in
  let mgr = Runtime.create ~strategy:Runtime.Grouped_agg db in
  Runtime.define_view mgr ~name:"catalog" http_catalog_text;
  let hub = Subscribe.attach mgr in
  Subscribe.subscribe hub
    "feed AFTER UPDATE ON view('catalog')/product/vendor";
  let api = Httpfront.Api.create ~port:0 ~mgr ~hub () in
  let port = Httpfront.Api.port api in
  let live = Atomic.make clients in
  let targets =
    [| ("GET", "/views/catalog", "");
       ("GET", "/views/catalog?ge(price,130)&sort(-price)&level=vendor", "");
       ("GET", "/views/catalog?eq(name,string:CRT%2015)&select(name)", "");
       ("GET", "/views/catalog?sort(-price)&limit(0,2)&level=vendor", "");
       ("POST", "/sql", "UPDATE vendor SET price = 101.0 WHERE vid = 'Amazon'");
       ("GET", "/subscribe/feed?mode=longpoll&cursor=0", "");
    |]
  in
  (* mix: 4 query shapes, 1 DML, 1 long-poll, round-robin offset per client *)
  let client k () =
    (* one persistent SSE stream for the whole run *)
    let sse = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect sse (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    let greeting = "GET /subscribe/feed HTTP/1.1\r\nhost: bench\r\n\r\n" in
    ignore (Unix.write_substring sse greeting 0 (String.length greeting));
    let lat = Array.make requests Float.nan in
    let errors = ref 0 in
    for i = 0 to requests - 1 do
      (* DML first so long-polls always have events to batch *)
      let meth, target, body =
        if i = 0 then targets.(4) else targets.((i + k) mod Array.length targets)
      in
      (* vary the written price so each DML really changes the view and
         fires the trigger (a constant write is a no-op after the first) *)
      let body =
        if meth = "POST" then
          Printf.sprintf
            "UPDATE vendor SET price = %d.5 WHERE vid = 'Amazon'"
            (100 + (((k * requests) + i) mod 50))
        else body
      in
      let t0 = Monotonic_clock.now () in
      (try
         let resp = http_client_request port ~meth ~target ~body in
         if String.length resp < 12 || String.sub resp 9 3 >= "500" then
           incr errors
       with _ -> incr errors);
      let t1 = Monotonic_clock.now () in
      lat.(i) <- Int64.to_float (Int64.sub t1 t0) /. 1e6
    done;
    (* drain whatever the SSE stream accumulated, then hang up *)
    Unix.set_nonblock sse;
    let events = ref 0 in
    let chunk = Bytes.create 65536 in
    (try
       let rec drain () =
         let n = Unix.read sse chunk 0 (Bytes.length chunk) in
         if n > 0 then begin
           let d = Bytes.sub_string chunk 0 n in
           String.iteri
             (fun i c ->
               if c = 'i' && i + 3 <= String.length d
                  && String.sub d i 3 = "id:" then incr events)
             d;
           drain ()
         end
       in
       drain ()
     with Unix.Unix_error _ -> ());
    (try Unix.close sse with _ -> ());
    Atomic.decr live;
    (lat, !errors, !events)
  in
  let w0 = Monotonic_clock.now () in
  let domains = List.init clients (fun k -> Domain.spawn (client k)) in
  (* the main domain is the event loop *)
  while Atomic.get live > 0 do
    ignore (Httpfront.Api.step ~timeout_ms:1 api)
  done;
  (* final rounds: flush any SSE tails before the clients hang up *)
  for _ = 1 to 10 do
    ignore (Httpfront.Api.step ~timeout_ms:1 api)
  done;
  let results = List.map Domain.join domains in
  let w1 = Monotonic_clock.now () in
  Httpfront.Api.stop api;
  let wall_s = Int64.to_float (Int64.sub w1 w0) /. 1e9 in
  let lats =
    Array.concat (List.map (fun (l, _, _) -> l) results)
  in
  Array.sort compare lats;
  let errors = List.fold_left (fun a (_, e, _) -> a + e) 0 results in
  let sse_events = List.fold_left (fun a (_, _, ev) -> a + ev) 0 results in
  let total = clients * requests in
  let rps = float_of_int total /. wall_s in
  let p50 = http_percentile lats 0.50 in
  let p99 = http_percentile lats 0.99 in
  Printf.printf "  %-24s %d\n" "requests" total;
  Printf.printf "  %-24s %.1f\n" "requests/sec" rps;
  Printf.printf "  %-24s %.3f\n" "p50 ms" p50;
  Printf.printf "  %-24s %.3f\n" "p99 ms" p99;
  Printf.printf "  %-24s %d\n" "errors" errors;
  Printf.printf "  %-24s %d\n" "sse events delivered" sse_events;
  Printf.printf "  %-24s %d\n%!" "server overloads (503)"
    (Httpfront.Httpd.overloads (Httpfront.Api.httpd api));
  ignore
    (record ~fig:"http" ~row:"closed-loop" ~series:"p99"
       { wall_ms = p99; cpu_ms = Float.nan });
  if !json_requested then begin
    let oc = open_out "BENCH_10.json" in
    Printf.fprintf oc
      "{\n\
      \  \"mode\": \"%s\",\n\
      \  \"clients\": %d,\n\
      \  \"requests\": %d,\n\
      \  \"wall_s\": %s,\n\
      \  \"requests_per_sec\": %s,\n\
      \  \"p50_ms\": %s,\n\
      \  \"p99_ms\": %s,\n\
      \  \"errors\": %d,\n\
      \  \"sse_events\": %d\n\
       }\n"
      (if full then "full" else "quick")
      clients total (json_float wall_s) (json_float rps) (json_float p50)
      (json_float p99) errors sse_events;
    close_out oc;
    Printf.printf "wrote BENCH_10.json\n"
  end

(* --- bechamel micro-benchmarks: one Test.make per figure --- *)

let bechamel_suite () =
  let open Bechamel in
  let p = { Workloadlib.Workload.quick_defaults with Workloadlib.Workload.leaf_tuples = 4_000; num_triggers = 100 } in
  let scenario name params strategy =
    Test.make ~name
      (Staged.stage
         (let built = Workloadlib.Workload.build params in
          let mgr = mgr_of strategy built in
          Workloadlib.Workload.install_triggers mgr params ~target_name:built.Workloadlib.Workload.top_names.(0);
          let step = ref 0 in
          fun () ->
            incr step;
            Workloadlib.Workload.update_leaf built ~top_index:0 ~step:!step))
  in
  let tests =
    [ scenario "fig17:100-triggers" p Runtime.Grouped;
      scenario "fig18:depth-4" { p with Workloadlib.Workload.depth = 4 } Runtime.Grouped;
      scenario "fig22:fanout-128" { p with Workloadlib.Workload.fanout = 128 } Runtime.Grouped_agg;
      scenario "fig23:8k-leaves" { p with Workloadlib.Workload.leaf_tuples = 8_000 } Runtime.Grouped;
      scenario "fig24:40-satisfied" { p with Workloadlib.Workload.num_satisfied = 40 } Runtime.Grouped_agg;
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  Printf.printf "\n== bechamel micro-benchmarks (ns per update) ==\n%!";
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      let results =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          instance raw
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-32s %12.0f ns\n%!" name est
          | _ -> Printf.printf "%-32s (no estimate)\n%!" name)
        results)
    tests

(* --- driver --- *)

let () =
  let args = Array.to_list Sys.argv in
  let full = List.mem "--full" args in
  let bechamel = List.mem "--bechamel" args in
  json_requested := List.mem "--json" args;
  let figs =
    match
      List.find_map
        (fun a ->
          if String.length a > 6 && String.sub a 0 6 = "--fig=" then
            Some (String.sub a 6 (String.length a - 6))
          else None)
        args
    with
    | Some s -> String.split_on_char ',' s
    | None ->
      [ "17"; "18"; "22"; "23"; "24"; "compile"; "ablation"; "recovery";
        "phases"; "overhead"; "fanout"; "view_update"; "scaling";
        "independence"; "advisor"; "http" ]
  in
  Printf.printf
    "Triggers over XML Views of Relational Data — benchmark harness (%s mode)\n"
    (if full then "paper-scale" else "quick");
  if bechamel then bechamel_suite ()
  else
    List.iter
      (fun f ->
        match f with
        | "17" -> fig17 ~full
        | "18" -> fig18 ~full
        | "22" -> fig22 ~full
        | "23" -> fig23 ~full
        | "24" -> fig24 ~full
        | "compile" -> compile_time ~full
        | "ablation" -> ablation ~full
        | "recovery" -> recovery_time ~full
        | "phases" -> phases ~full
        | "overhead" -> overhead ~full
        | "fanout" -> fanout_fig ~full
        | "view_update" -> view_update_fig ~full
        | "scaling" -> scaling_fig ~full
        | "independence" -> independence_fig ~full
        | "advisor" -> advisor_fig ~full
        | "http" -> http_fig ~full
        | other -> Printf.printf "unknown figure %S\n" other)
      figs;
  if !json_requested then write_json ~full "BENCH_5.json";
  Printf.printf "\n(total action dispatches across all sweeps: %d)\n" !dispatched
