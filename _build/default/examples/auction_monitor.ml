(* Auction monitor: a deep (4-level) hierarchy — site / category / auction /
   bid — exercising nested views, aggregate conditions, a min() view with the
   aggregate-only comparison optimization (Appendix F.4), and all three XML
   events at an inner level of the hierarchy.

     dune exec examples/auction_monitor.exe *)

open Relkit

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  let db = Database.create () in
  Database.create_table db
    (Schema.make ~name:"category"
       ~columns:[ ("cid", Schema.TString); ("cname", Schema.TString) ]
       ~primary_key:[ "cid" ] ());
  Database.create_table db
    (Schema.make ~name:"auction"
       ~columns:
         [ ("aid", Schema.TString); ("cid", Schema.TString); ("title", Schema.TString) ]
       ~primary_key:[ "aid" ]
       ~foreign_keys:
         [ { Schema.fk_columns = [ "cid" ]; fk_table = "category"; fk_ref_columns = [ "cid" ] } ]
       ());
  Database.create_table db
    (Schema.make ~name:"bid"
       ~columns:
         [ ("bid_id", Schema.TString); ("aid", Schema.TString); ("bidder", Schema.TString);
           ("amount", Schema.TFloat);
         ]
       ~primary_key:[ "bid_id" ]
       ~foreign_keys:
         [ { Schema.fk_columns = [ "aid" ]; fk_table = "auction"; fk_ref_columns = [ "aid" ] } ]
       ());
  Database.create_index db ~table:"auction" ~column:"cid";
  Database.create_index db ~table:"bid" ~column:"aid";
  Database.insert_rows db ~table:"category"
    [ [| Value.String "C1"; Value.String "paintings" |];
      [| Value.String "C2"; Value.String "clocks" |];
    ];
  Database.insert_rows db ~table:"auction"
    [ [| Value.String "A1"; Value.String "C1"; Value.String "Sunset over fields" |];
      [| Value.String "A2"; Value.String "C1"; Value.String "Portrait study" |];
      [| Value.String "A3"; Value.String "C2"; Value.String "Longcase clock" |];
    ];
  Database.insert_rows db ~table:"bid"
    [ [| Value.String "B1"; Value.String "A1"; Value.String "ann"; Value.Float 120.0 |];
      [| Value.String "B2"; Value.String "A1"; Value.String "ben"; Value.Float 140.0 |];
      [| Value.String "B3"; Value.String "A2"; Value.String "cat"; Value.Float 80.0 |];
      [| Value.String "B4"; Value.String "A3"; Value.String "dan"; Value.Float 300.0 |];
      [| Value.String "B5"; Value.String "A3"; Value.String "eve"; Value.Float 320.0 |];
    ];

  let mgr = Trigview.Runtime.create ~strategy:Trigview.Runtime.Grouped_agg db in
  (* the site view: categories > auctions > bids; an auction is "live" once
     it has at least one bid *)
  Trigview.Runtime.define_view mgr ~name:"site"
    {|<site>
      {for $c in view("default")/category/row
       let $as := view("default")/auction/row[./cid = $c/cid]
       return <category name="{$c/cname}">
         {for $a in $as
          let $bs := view("default")/bid/row[./aid = $a/aid]
          where count($bs) >= 1
          return <auction id="{$a/aid}"><title>{$a/title}</title>
            {for $b in $bs
             return <bid><bidder>{$b/bidder}</bidder><amount>{$b/amount}</amount></bid>}
          </auction>}
       </category>}
    </site>|};

  let announce name fi =
    let describe node =
      match Xmlkit.Xml.tag node with
      | Some "auction" ->
        Printf.sprintf "auction %s (%d bids)"
          (Option.value ~default:"?" (Xmlkit.Xml.attr node "id"))
          (List.length (Xmlkit.Xml.children_named node "bid"))
      | Some "category" ->
        Printf.sprintf "category %s"
          (Option.value ~default:"?" (Xmlkit.Xml.attr node "name"))
      | _ -> Xmlkit.Xml.to_string node
    in
    Printf.printf "  [%s] %s: %s\n" name
      (Database.string_of_event fi.Trigview.Runtime.fi_event)
      (match fi.Trigview.Runtime.fi_new, fi.Trigview.Runtime.fi_old with
      | Some n, _ -> describe n
      | None, Some o -> describe o ^ " (removed)"
      | None, None -> "?")
  in
  List.iter
    (fun a -> Trigview.Runtime.register_action mgr ~name:a (announce a))
    [ "watcher"; "hot"; "closer"; "seller" ];

  (* triggers on an inner level of the hierarchy *)
  List.iter
    (Trigview.Runtime.create_trigger mgr)
    [ (* any change to a live auction (new bids are updates of the node) *)
      "CREATE TRIGGER w1 AFTER UPDATE ON view('site')//auction DO watcher(NEW_NODE)";
      (* auctions that get hot: five or more bids *)
      "CREATE TRIGGER h1 AFTER UPDATE ON view('site')//auction WHERE count(NEW_NODE/bid) >= 5 DO hot(NEW_NODE)";
      (* an auction going live / dying *)
      "CREATE TRIGGER c1 AFTER INSERT ON view('site')//auction DO closer(NEW_NODE)";
      "CREATE TRIGGER c2 AFTER DELETE ON view('site')//auction DO closer(OLD_NODE)";
      (* category-level monitoring *)
      "CREATE TRIGGER s1 AFTER UPDATE ON view('site')/category[@name = 'paintings'] DO seller(NEW_NODE)";
    ];

  section "A new bid lands on A1 (auction + category updates)";
  Database.insert_rows db ~table:"bid"
    [ [| Value.String "B6"; Value.String "A1"; Value.String "fay"; Value.Float 150.0 |] ];

  section "A bidding war makes A1 hot";
  Database.insert_rows db ~table:"bid"
    [ [| Value.String "B7"; Value.String "A1"; Value.String "gus"; Value.Float 160.0 |];
      [| Value.String "B8"; Value.String "A1"; Value.String "ann"; Value.Float 175.0 |];
    ];

  section "A brand-new auction goes live with its first bid";
  Database.insert_rows db ~table:"auction"
    [ [| Value.String "A4"; Value.String "C2"; Value.String "Carriage clock" |] ];
  Printf.printf "(no bids yet: the auction is not in the view)\n";
  Database.insert_rows db ~table:"bid"
    [ [| Value.String "B9"; Value.String "A4"; Value.String "ben"; Value.Float 60.0 |] ];

  section "All bids on A2 are retracted: the auction leaves the view";
  ignore
    (Database.delete_rows db ~table:"bid" ~where:(fun row ->
         Value.equal row.(1) (Value.String "A2")));

  section "A no-op repricing statement is suppressed end to end";
  ignore
    (Database.update_rows db ~table:"bid" ~where:(fun _ -> true) ~set:(fun r -> Array.copy r));
  Printf.printf "(nothing fired)\n";

  section "Aggregate-only views: best bid per category (Appendix F.4)";
  Trigview.Runtime.define_view mgr ~name:"best"
    {|<best>
      {for $c in view("default")/category/row
       let $as := view("default")/auction/row[./cid = $c/cid]
       let $bs := view("default")/bid/row[./aid = $as/aid]
       where count($bs) >= 1
       return <category name="{$c/cname}"><top>{max($bs/amount)}</top></category>}
    </best>|};
  Trigview.Runtime.register_action mgr ~name:"records" (fun fi ->
      match fi.Trigview.Runtime.fi_new with
      | Some n ->
        Printf.printf "  [records] new top bid in %s: %s\n"
          (Option.value ~default:"?" (Xmlkit.Xml.attr n "name"))
          (Xmlkit.Xml.text_content n)
      | None -> ());
  Trigview.Runtime.create_trigger mgr
    "CREATE TRIGGER r1 AFTER UPDATE ON view('best')/category DO records(NEW_NODE)";
  Printf.printf "a bid below the maximum does not fire:\n";
  Database.insert_rows db ~table:"bid"
    [ [| Value.String "B10"; Value.String "A3"; Value.String "dan"; Value.Float 310.0 |] ];
  Printf.printf "a record-setting bid does:\n";
  Database.insert_rows db ~table:"bid"
    [ [| Value.String "B11"; Value.String "A3"; Value.String "eve"; Value.Float 400.0 |] ];

  section "Incrementally maintained view copy (the paper's future work, 8)";
  let maintained = Trigview.Maintain.attach mgr ~path:"view('site')//auction" in
  Printf.printf "maintaining %d auction nodes incrementally\n"
    (List.length (Trigview.Maintain.current maintained));
  Database.insert_rows db ~table:"bid"
    [ [| Value.String "B12"; Value.String "A4"; Value.String "gus"; Value.Float 75.0 |] ];
  Printf.printf "after one more bid: %d nodes, %d deltas applied (no recomputation)\n"
    (List.length (Trigview.Maintain.current maintained))
    (Trigview.Maintain.deltas_applied maintained);

  section "Stats";
  let s = Trigview.Runtime.stats mgr in
  Printf.printf "SQL firings %d, pairs computed %d, actions dispatched %d\n"
    s.Trigview.Runtime.sql_firings s.Trigview.Runtime.rows_computed
    s.Trigview.Runtime.actions_dispatched
