examples/quickstart.ml: Array Database List Option Printf Ra_eval Relkit Schema String Table Trigview Value Xmlkit Xquery
