examples/auction_monitor.ml: Array Database List Option Printf Relkit Schema Trigview Value Xmlkit
