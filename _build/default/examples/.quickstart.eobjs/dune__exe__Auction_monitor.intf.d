examples/auction_monitor.mli:
