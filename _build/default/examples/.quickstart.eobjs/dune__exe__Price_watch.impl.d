examples/price_watch.ml: Array Database List Option Printf Relkit Schema Trigview Value Xmlkit
