examples/price_watch.mli:
