examples/quickstart.mli:
