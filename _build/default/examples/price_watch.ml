(* Price watch: the web-service scenario from the paper's introduction.

   A supplier publishes its product catalog as an XML view; buyers place
   triggers instead of polling:
   - price-drop alerts on specific products (UPDATE triggers with conditions
     over NEW_NODE, grouped across buyers);
   - new-offer alerts (UPDATE fired when a vendor joins a product);
   - availability alerts (INSERT: a product appears in the published view
     once at least two vendors carry it);
   - discontinuation alerts (DELETE: it drops below the threshold).

     dune exec examples/price_watch.exe *)

open Relkit

let section title = Printf.printf "\n=== %s ===\n" title

let catalog_view =
  {|<catalog>
    {for $prodname in distinct(view("default")/product/row/pname)
     let $products := view("default")/product/row[./pname = $prodname]
     let $vendors := view("default")/vendor/row[./pid = $products/pid]
     where count($vendors) >= 2
     return <product name="{$prodname}">
       {for $vendor in $vendors return <vendor>{$vendor/*}</vendor>}
     </product>}
  </catalog>|}

let () =
  let db = Database.create () in
  Database.create_table db
    (Schema.make ~name:"product"
       ~columns:[ ("pid", Schema.TString); ("pname", Schema.TString); ("mfr", Schema.TString) ]
       ~primary_key:[ "pid" ] ());
  Database.create_table db
    (Schema.make ~name:"vendor"
       ~columns:[ ("vid", Schema.TString); ("pid", Schema.TString); ("price", Schema.TFloat) ]
       ~primary_key:[ "vid"; "pid" ]
       ~foreign_keys:
         [ { Schema.fk_columns = [ "pid" ]; fk_table = "product"; fk_ref_columns = [ "pid" ] } ]
       ());
  Database.create_index db ~table:"vendor" ~column:"pid";
  Database.create_index db ~table:"product" ~column:"pname";
  (* a slightly larger catalog *)
  let products =
    [ ("P1", "CRT 15", "Samsung"); ("P2", "LCD 19", "Samsung"); ("P3", "CRT 17", "Viewsonic");
      ("P4", "OLED 27", "LG"); ("P5", "Plasma 42", "Panasonic");
    ]
  in
  List.iter
    (fun (pid, pname, mfr) ->
      Database.insert_rows db ~table:"product"
        [ [| Value.String pid; Value.String pname; Value.String mfr |] ])
    products;
  List.iter
    (fun (vid, pid, price) ->
      Database.insert_rows db ~table:"vendor"
        [ [| Value.String vid; Value.String pid; Value.Float price |] ])
    [ ("Amazon", "P1", 100.0); ("Bestbuy", "P1", 120.0);
      ("Amazon", "P2", 210.0); ("Buy.com", "P2", 200.0); ("Bestbuy", "P2", 180.0);
      ("Newegg", "P3", 160.0); ("Amazon", "P3", 170.0);
      ("Amazon", "P4", 890.0);  (* only one vendor: not yet in the view *)
      ("Amazon", "P5", 1400.0); ("Bestbuy", "P5", 1350.0);
    ];

  let mgr = Trigview.Runtime.create ~strategy:Trigview.Runtime.Grouped db in
  Trigview.Runtime.define_view mgr ~name:"catalog" catalog_view;

  (* buyers' mailboxes *)
  let deliver buyer fi =
    let name node = Option.value ~default:"?" (Xmlkit.Xml.attr node "name") in
    match fi.Trigview.Runtime.fi_event, fi.Trigview.Runtime.fi_new, fi.Trigview.Runtime.fi_old with
    | Database.Insert, Some n, _ ->
      Printf.printf "  [%s] now available: %s\n" buyer (name n)
    | Database.Delete, _, Some o ->
      Printf.printf "  [%s] discontinued: %s\n" buyer (name o)
    | _, Some n, _ ->
      let best =
        List.fold_left min infinity
          (List.filter_map float_of_string_opt
             (Xmlkit.Xpath.select_strings n "/vendor/price"))
      in
      Printf.printf "  [%s] %s changed; best offer now $%.2f\n" buyer (name n) best
    | _ -> ()
  in
  List.iter
    (fun buyer -> Trigview.Runtime.register_action mgr ~name:buyer (deliver buyer))
    [ "alice"; "bob"; "carol" ];

  (* Structurally similar price-drop triggers from different buyers: one
     shared SQL trigger, one constants-table row per watched product. *)
  List.iter
    (Trigview.Runtime.create_trigger mgr)
    [ "CREATE TRIGGER alice_crt AFTER UPDATE ON view('catalog')/product WHERE NEW_NODE/@name = 'CRT 15' DO alice(NEW_NODE)";
      "CREATE TRIGGER bob_crt AFTER UPDATE ON view('catalog')/product WHERE NEW_NODE/@name = 'CRT 15' DO bob(NEW_NODE)";
      "CREATE TRIGGER bob_lcd AFTER UPDATE ON view('catalog')/product WHERE NEW_NODE/@name = 'LCD 19' DO bob(NEW_NODE)";
      (* a bargain hunter: any product that gains a sub-$150 offer *)
      "CREATE TRIGGER carol_deals AFTER UPDATE ON view('catalog')/product WHERE NEW_NODE/vendor/price < 150 DO carol(NEW_NODE)";
      (* availability / discontinuation *)
      "CREATE TRIGGER alice_avail AFTER INSERT ON view('catalog')/product DO alice(NEW_NODE)";
      "CREATE TRIGGER alice_gone AFTER DELETE ON view('catalog')/product DO alice(OLD_NODE)";
    ];
  Printf.printf "%d XML triggers -> %d SQL triggers (GROUPED)\n"
    (List.length (Trigview.Runtime.trigger_names mgr))
    (Trigview.Runtime.sql_trigger_count mgr);

  section "Amazon drops the CRT 15 price to $89";
  ignore
    (Database.update_pk db ~table:"vendor"
       ~pk:[ Value.String "Amazon"; Value.String "P1" ]
       ~set:(fun row -> [| row.(0); row.(1); Value.Float 89.0 |]));

  section "A second vendor starts carrying the OLED 27";
  Database.insert_rows db ~table:"vendor"
    [ [| Value.String "Bestbuy"; Value.String "P4"; Value.Float 870.0 |] ];

  section "Buy.com stops carrying the LCD 19 (still two vendors left)";
  ignore (Database.delete_pk db ~table:"vendor" ~pk:[ Value.String "Buy.com"; Value.String "P2" ]);

  section "Bestbuy stops carrying the Plasma 42 (drops out of the catalog)";
  ignore (Database.delete_pk db ~table:"vendor" ~pk:[ Value.String "Bestbuy"; Value.String "P5" ]);

  section "A statement touching many rows fires each trigger once per node";
  ignore
    (Database.update_rows db ~table:"vendor"
       ~where:(fun row -> Value.equal row.(1) (Value.String "P2"))
       ~set:(fun row -> [| row.(0); row.(1); Value.sub row.(2) (Value.Float 40.0) |]));

  section "Stats";
  let s = Trigview.Runtime.stats mgr in
  Printf.printf "SQL firings %d, pairs computed %d, actions dispatched %d\n"
    s.Trigview.Runtime.sql_firings s.Trigview.Runtime.rows_computed
    s.Trigview.Runtime.actions_dispatched
