(* Quickstart: the paper's running example, end to end.

   Builds the product/vendor database of Figure 2, publishes the catalog
   view of Figure 3, installs the Notify trigger of §2.2, and runs the
   updates discussed in the paper — including the §4.1 nested-predicate
   insert that naive change propagation misses.

     dune exec examples/quickstart.exe *)

open Relkit

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  (* 1. the relational database (Figure 2) *)
  let db = Database.create () in
  Database.create_table db
    (Schema.make ~name:"product"
       ~columns:[ ("pid", Schema.TString); ("pname", Schema.TString); ("mfr", Schema.TString) ]
       ~primary_key:[ "pid" ] ());
  Database.create_table db
    (Schema.make ~name:"vendor"
       ~columns:
         [ ("vid", Schema.TString); ("pid", Schema.TString); ("price", Schema.TFloat) ]
       ~primary_key:[ "vid"; "pid" ]
       ~foreign_keys:
         [ { Schema.fk_columns = [ "pid" ]; fk_table = "product"; fk_ref_columns = [ "pid" ] } ]
       ());
  Database.create_index db ~table:"vendor" ~column:"pid";
  Database.create_index db ~table:"product" ~column:"pname";
  Database.insert_rows db ~table:"product"
    [ [| Value.String "P1"; Value.String "CRT 15"; Value.String "Samsung" |];
      [| Value.String "P2"; Value.String "LCD 19"; Value.String "Samsung" |];
      [| Value.String "P3"; Value.String "CRT 15"; Value.String "Viewsonic" |];
    ];
  Database.insert_rows db ~table:"vendor"
    [ [| Value.String "Amazon"; Value.String "P1"; Value.Float 100.0 |];
      [| Value.String "Bestbuy"; Value.String "P1"; Value.Float 120.0 |];
      [| Value.String "Circuitcity"; Value.String "P1"; Value.Float 150.0 |];
      [| Value.String "Buy.com"; Value.String "P2"; Value.Float 200.0 |];
      [| Value.String "Bestbuy"; Value.String "P2"; Value.Float 180.0 |];
      [| Value.String "Bestbuy"; Value.String "P3"; Value.Float 120.0 |];
      [| Value.String "Circuitcity"; Value.String "P3"; Value.Float 140.0 |];
    ];

  (* 2. the XML view (Figure 3) *)
  let mgr = Trigview.Runtime.create ~strategy:Trigview.Runtime.Grouped_agg db in
  Trigview.Runtime.define_view mgr ~name:"catalog"
    {|<catalog>
      {for $prodname in distinct(view("default")/product/row/pname)
       let $products := view("default")/product/row[./pname = $prodname]
       let $vendors := view("default")/vendor/row[./pid = $products/pid]
       where count($vendors) >= 2
       return <product name="{$prodname}">
         {for $vendor in $vendors return <vendor>{$vendor/*}</vendor>}
       </product>}
    </catalog>|};

  section "The materialized catalog view (Figure 4)";
  let schema_of name = Table.schema (Database.get_table db name) in
  let view =
    Xquery.Compile.view_of_string ~schema_of ~name:"catalog"
      {|<catalog>
      {for $prodname in distinct(view("default")/product/row/pname)
       let $products := view("default")/product/row[./pname = $prodname]
       let $vendors := view("default")/vendor/row[./pid = $products/pid]
       where count($vendors) >= 2
       return <product name="{$prodname}">
         {for $vendor in $vendors return <vendor>{$vendor/*}</vendor>}
       </product>}
    </catalog>|}
  in
  print_string
    (Xmlkit.Xml.to_pretty_string (Xquery.Compile.materialize (Ra_eval.ctx_of_db db) view));

  (* 3. the Notify trigger (§2.2) *)
  Trigview.Runtime.register_action mgr ~name:"notifySmith" (fun fi ->
      Printf.printf "notifySmith(%s): %s\n"
        fi.Trigview.Runtime.fi_trigger
        (match fi.Trigview.Runtime.fi_new with
        | Some n -> Xmlkit.Xml.to_string n
        | None -> "(no NEW_NODE)"));
  Trigview.Runtime.create_trigger mgr
    {|CREATE TRIGGER Notify AFTER Update
      ON view('catalog')/product
      WHERE OLD_NODE/@name = 'CRT 15'
      DO notifySmith(NEW_NODE)|};

  section "Amazon puts product P1 on sale (§2.3's transition-table example)";
  ignore
    (Database.update_pk db ~table:"vendor"
       ~pk:[ Value.String "Amazon"; Value.String "P1" ]
       ~set:(fun row -> [| row.(0); row.(1); Value.Float 75.0 |]));

  section "A vendor is added for LCD 19 (the §4.1 nested-predicate insert)";
  Printf.printf "(the Notify trigger watches CRT 15, so nothing should fire)\n";
  Database.insert_rows db ~table:"vendor"
    [ [| Value.String "Amazon"; Value.String "P2"; Value.Float 500.0 |] ];

  section "A second trigger on any product update";
  Trigview.Runtime.register_action mgr ~name:"audit" (fun fi ->
      Printf.printf "audit: %s of <product name=%S>\n"
        (Database.string_of_event fi.Trigview.Runtime.fi_event)
        (match fi.Trigview.Runtime.fi_new, fi.Trigview.Runtime.fi_old with
        | Some n, _ | None, Some n -> Option.value ~default:"?" (Xmlkit.Xml.attr n "name")
        | None, None -> "?"));
  Trigview.Runtime.create_trigger mgr
    "CREATE TRIGGER Audit AFTER UPDATE ON view('catalog')/product DO audit(NEW_NODE)";
  Database.insert_rows db ~table:"vendor"
    [ [| Value.String "Walmart"; Value.String "P2"; Value.Float 450.0 |] ];

  section "The generated SQL trigger (cf. Figure 16)";
  (match Trigview.Runtime.generated_sql mgr with
  | (name, sql) :: _ ->
    Printf.printf "-- %s (truncated)\n%s\n...\n" name
      (String.concat "\n"
         (List.filteri (fun i _ -> i < 25) (String.split_on_char '\n' sql)))
  | [] -> ());

  section "Statistics";
  let s = Trigview.Runtime.stats mgr in
  Printf.printf
    "SQL trigger firings: %d; (OLD, NEW) pairs computed: %d; actions dispatched: %d\n"
    s.Trigview.Runtime.sql_firings s.Trigview.Runtime.rows_computed
    s.Trigview.Runtime.actions_dispatched
