(** Incremental maintenance of materialized XML views — the future-work
    direction of the paper's §8 ("whether our general algorithm for detecting
    changes over complex XQuery views can be adapted for incrementally
    maintaining complex materialized XML views").

    [attach] materializes the node set a trigger path selects and keeps it
    up to date by installing three internal XML triggers (UPDATE, INSERT,
    DELETE) whose firings are applied as deltas — the stored copy is never
    recomputed.  Because the deltas come from the same G_affected plans that
    power user triggers, the maintained copy stays correct under nested
    predicates, threshold crossings, and multi-row statements. *)

type t

(** Attaches an incrementally maintained copy of the nodes selected by
    [path] (e.g. ["view('catalog')/product"]).  The manager must already
    have the view defined.
    @raise Runtime.Error on unknown views or unsupported paths. *)
val attach : Runtime.t -> path:string -> t

(** The maintained node set, in canonical order. *)
val current : t -> Xmlkit.Xml.t list

(** Number of delta applications since [attach]. *)
val deltas_applied : t -> int

(** Uninstalls the internal triggers. *)
val detach : t -> unit
