(** Event pushdown (§3.3 and Appendix C of the paper): given the Path graph
    of an XML trigger and the XML-level event it monitors, determine the
    minimal set of (base table, relational event) pairs that can cause it.

    This is GetSrcEvents (Figure 19), driven by the operator-specific rules
    of Table 4.  The implementation tracks updated-column sets through
    Select/Project/GroupBy so that, e.g., an UPDATE trigger over a view that
    never reads some column does not monitor updates that can only touch that
    column (the refinement is conservative: when in doubt a pair is kept). *)

type relational_event = {
  ev_table : string;
  ev_event : Relkit.Database.event;
}

(** The XML-level event of the trigger, translated to an event on the Path
    graph's top operator.  For [Update] the column set is "all output
    columns". *)
val source_events :
  Xqgm.Op.t -> Relkit.Database.event -> relational_event list

(** The columns of [table] actually scanned anywhere in the graph — the
    runtime prunes UPDATE transition tables to these columns, so updates
    touching only unscanned columns never produce affected keys. *)
val relevant_columns : Xqgm.Op.t -> table:string -> string list

val pp_event : Format.formatter -> relational_event -> unit
