(** CreateAKGraph (Figure 8 of the paper): build the affected-key graph.

    Given a view graph [G] (or its pre-state version [G_old]), the updated
    base table [T], and a transition-table binding (Δ or ∇), produce an
    operator [O'] such that joining [G]'s top operator with [O'] on the
    returned key columns yields exactly the output tuples affected by the
    relational update.  This is the piece that stays correct under nested
    predicates (§4.1's Δvendor/count example): GroupBy operators join their
    *full* input with the affected keys before re-deriving group keys,
    instead of evaluating the view over transition tuples alone.

    The returned key may be a subset of the operator's canonical key: when
    only one side of a join can be affected, only that side's key columns are
    needed (and joining on them is exactly the paper's invariant). *)

(** [(graph column, affected-key column)] pairs: the AK graph names each key
    column ["ak$" ^ original]. *)
type key = (string * string) list

(** @raise Xqgm.Keys.Not_trigger_specifiable if a needed key cannot be
    derived.  Returns [None] when the subgraph cannot be affected by the
    update (the paper's ∅). *)
val create :
  schema_of:(string -> Relkit.Schema.t) ->
  table:string ->
  dt:Xqgm.Op.binding ->
  Xqgm.Op.t ->
  (Xqgm.Op.t * key) option

val ak_col : string -> string
