module Op = Xqgm.Op
module Expr = Xqgm.Expr
module Keys = Xqgm.Keys

type key = (string * string) list

let ak_col c = "ak$" ^ c

let key_join_pred (key : key) =
  Expr.and_ (List.map (fun (c, akc) -> Expr.eq (Expr.Col c) (Expr.Col akc)) key)

(* Project an AK graph so that its columns follow a renaming of the original
   graph's columns (used when passing through Project operators). *)
let rename_key ak (key : key) renaming =
  let new_key =
    List.map
      (fun (c, akc) ->
        match List.assoc_opt c renaming with
        | Some c' -> (c', akc, ak_col c')
        | None ->
          raise
            (Keys.Not_trigger_specifiable
               (Printf.sprintf "projection drops key column %S needed by the affected-key graph" c)))
      key
  in
  if List.for_all (fun (_, akc, akc') -> akc = akc') new_key then
    (ak, List.map (fun (c', akc, _) -> (c', akc)) new_key)
  else
    let ak' =
      Op.project ~defs:(List.map (fun (_, akc, akc') -> (akc', Expr.Col akc)) new_key) ak
    in
    (ak', List.map (fun (c', _, akc') -> (c', akc')) new_key)

let rec create ~schema_of ~table ~dt (op : Op.t) : (Op.t * key) option =
  match op.Op.node with
  | Op.Table { table = t; binding; cols } ->
    if t = table && (binding = Op.Post || binding = Op.Pre) then begin
      let schema = schema_of t in
      let pk = schema.Relkit.Schema.primary_key in
      let key =
        List.map
          (fun k ->
            match List.assoc_opt k cols with
            | Some out -> (k, out)
            | None ->
              raise
                (Keys.Not_trigger_specifiable
                   (Printf.sprintf "scan of %S does not expose key column %S" t k)))
          pk
      in
      let ak = Op.table ~binding:dt t (List.map (fun (src, out) -> (src, ak_col out)) key) in
      Some (ak, List.map (fun (_, out) -> (out, ak_col out)) key)
    end
    else None
  | Op.Select { input; _ } -> create ~schema_of ~table ~dt input
  | Op.Project { input; defs } -> (
    match create ~schema_of ~table ~dt input with
    | None -> None
    | Some (ak, key) ->
      (* Key columns pass through projections as plain column references. *)
      let renaming =
        List.filter_map (fun (o, e) -> match e with Expr.Col c -> Some (c, o) | _ -> None) defs
      in
      (* invert: input col -> first output name *)
      let renaming =
        List.fold_left
          (fun acc (c, o) -> if List.mem_assoc c acc then acc else (c, o) :: acc)
          [] renaming
      in
      Some (rename_key ak key renaming))
  | Op.Join { kind; left; right; pred } -> (
    let l = create ~schema_of ~table ~dt left in
    let r = create ~schema_of ~table ~dt right in
    match kind with
    | Op.Left_outer -> (
      (* The padded side's columns are NULL for outer rows that lost all
         their matches, so right-side affected keys cannot re-link to the
         output.  Re-key everything to the LEFT side: left keys are always
         present in the output (Figure 8 only treats inner joins; this is
         the sound extension for the outer joins our front-end emits). *)
      let equalities =
        let rec go = function
          | Expr.Binop (Relkit.Ra.And, a, b) -> go a @ go b
          | Expr.Binop (Relkit.Ra.Eq, Expr.Col a, Expr.Col b) -> [ (a, b); (b, a) ]
          | _ -> []
        in
        go pred
      in
      let left_cols = Op.cols left in
      let lkey = Keys.canonical_key ~schema_of left in
      let all_left_keys () =
        (* conservative: every left row may be affected *)
        Op.project ~defs:(List.map (fun k -> (ak_col k, Expr.Col k)) lkey) left
      in
      let rekey_left (la, lk) =
        (* join the left input with its own AK, then project the full key *)
        if List.map fst lk = lkey then (la, lk)
        else
          let j = Op.join ~pred:(key_join_pred lk) left la in
          ( Op.project ~defs:(List.map (fun k -> (ak_col k, Expr.Col k)) lkey) j,
            List.map (fun k -> (k, ak_col k)) lkey )
      in
      let rekey_right (ra, rk) =
        (* translate the right AK keys to left columns via the join
           equalities, then pick up the left rows they touch *)
        let translated =
          List.map
            (fun (rcol, akc) ->
              List.find_map
                (fun (a, b) ->
                  if a = rcol && List.mem b left_cols then Some (b, akc) else None)
                equalities)
            rk
        in
        if List.for_all Option.is_some translated then begin
          let join_pred =
            Expr.and_
              (List.map
                 (fun o ->
                   let lcol, akc = Option.get o in
                   Expr.eq (Expr.Col lcol) (Expr.Col akc))
                 translated)
          in
          let j = Op.join ~pred:join_pred left ra in
          Op.project ~defs:(List.map (fun k -> (ak_col k, Expr.Col k)) lkey) j
        end
        else all_left_keys ()
      in
      let lkey_pairs = List.map (fun k -> (k, ak_col k)) lkey in
      match l, r with
      | None, None -> None
      | Some lr, None -> Some (rekey_left lr)
      | None, Some rr -> Some (rekey_right rr, lkey_pairs)
      | Some lr, Some rr ->
        let la, _ = rekey_left lr in
        let ra = rekey_right rr in
        let cols = List.map snd lkey_pairs in
        Some (Op.union ~cols [ (la, cols); (ra, cols) ], lkey_pairs))
    | Op.Inner -> (
      match l, r with
      | None, None -> None
      | Some lr, None -> Some lr
      | None, Some rr -> Some rr
      | Some (la, lk), Some (ra, rk) ->
        (* Both sides can be affected: union of cross products (Fig. 8
           lines 36-39). *)
        let lkey_cols = Keys.canonical_key ~schema_of left in
        let rkey_cols = Keys.canonical_key ~schema_of right in
        let full_key = List.map (fun c -> (c, ak_col c)) (lkey_cols @ rkey_cols) in
        let out_cols = List.map snd full_key in
        let ja =
          (* affected left keys x all right keys *)
          let j = Op.join ~pred:(Expr.Const (Relkit.Value.Bool true)) la right in
          Op.project
            ~defs:
              (List.map (fun (_, akc) -> (akc, Expr.Col akc)) lk
              @ List.map (fun c -> (ak_col c, Expr.Col c)) rkey_cols
              @
              (* left key columns not in lk are unknown: the AK key of the
                 left side may be partial; pad the remaining ones from the
                 right... they do not exist, so restrict the full key to what
                 we can produce *)
              [])
            j
        in
        let jb =
          let j = Op.join ~pred:(Expr.Const (Relkit.Value.Bool true)) left ra in
          Op.project
            ~defs:
              (List.map (fun c -> (ak_col c, Expr.Col c)) lkey_cols
              @ List.map (fun (_, akc) -> (akc, Expr.Col akc)) rk)
            j
        in
        (* If lk is partial, ja lacks some ak columns of the full key.  We
           recover them by joining back with the original side, which the
           Project above cannot do — instead we require full keys here, which
           holds because AK keys are only partial across *join* boundaries
           and lk/rk come from complete subgraphs. *)
        let ja_cols = Op.cols ja and jb_cols = Op.cols jb in
        if
          List.sort compare ja_cols = List.sort compare out_cols
          && List.sort compare jb_cols = List.sort compare out_cols
        then
          Some
            ( Op.union ~cols:out_cols [ (ja, out_cols); (jb, out_cols) ],
              full_key )
        else begin
          (* Partial side keys: fall back to joining each AK with its own
             side to recover that side's full key. *)
          let expand side ak key =
            let side_key = Keys.canonical_key ~schema_of side in
            let j = Op.join ~pred:(key_join_pred key) side ak in
            Op.project ~defs:(List.map (fun c -> (ak_col c, Expr.Col c)) side_key) j
          in
          let la_full = expand left la lk and ra_full = expand right ra rk in
          let ja =
            Op.project
              ~defs:
                (List.map (fun c -> (ak_col c, Expr.Col (ak_col c))) lkey_cols
                @ List.map (fun c -> (ak_col c, Expr.Col c)) rkey_cols)
              (Op.join ~pred:(Expr.Const (Relkit.Value.Bool true)) la_full right)
          in
          let jb =
            Op.project
              ~defs:
                (List.map (fun c -> (ak_col c, Expr.Col c)) lkey_cols
                @ List.map (fun c -> (ak_col c, Expr.Col (ak_col c))) rkey_cols)
              (Op.join ~pred:(Expr.Const (Relkit.Value.Bool true)) left ra_full)
          in
          Some (Op.union ~cols:out_cols [ (ja, out_cols); (jb, out_cols) ], full_key)
        end)
    | Op.Left_anti | Op.Right_anti -> (
      let surviving, lost, sr =
        match kind with
        | Op.Left_anti -> (left, right, l)
        | _ -> (right, left, r)
      in
      let lost_affected =
        create ~schema_of ~table ~dt lost <> None
      in
      if lost_affected then begin
        (* A change on the invisible side can flip any surviving tuple in or
           out: conservatively flag every key of the surviving side. *)
        let skey = Keys.canonical_key ~schema_of surviving in
        let all =
          Op.project ~defs:(List.map (fun c -> (ak_col c, Expr.Col c)) skey) surviving
        in
        Some (all, List.map (fun c -> (c, ak_col c)) skey)
      end
      else
        match sr with
        | None -> None
        | Some (ak, key) -> Some (ak, key)))
  | Op.Group_by { input; keys; _ } -> (
    match create ~schema_of ~table ~dt input with
    | None -> None
    | Some (ak, key) ->
      (* Join the GroupBy's full input with the affected keys, then project
         the distinct grouping-column values (Fig. 8 lines 15-17 and the
         walk-through of Figures 9-10). *)
      let j = Op.join ~pred:(key_join_pred key) input ak in
      let grouped = Op.group_by ~keys ~aggs:[] j in
      if keys = [] then
        (* Scalar aggregate: the single output tuple is affected whenever any
           input tuple is; its key is empty. *)
        Some (grouped, [])
      else
        let renamed =
          Op.project ~defs:(List.map (fun g -> (ak_col g, Expr.Col g)) keys) grouped
        in
        Some (renamed, List.map (fun g -> (g, ak_col g)) keys))
  | Op.Union { cols = out_cols; inputs } ->
    let out_key = Keys.canonical_key ~schema_of op in
    let parts =
      List.filter_map
        (fun (input, mapping) ->
          match create ~schema_of ~table ~dt input with
          | None -> None
          | Some (ak, key) ->
            (* Join the AK back with its own input to recover all mapped key
               columns, then rename through the union mapping. *)
            let j = Op.join ~pred:(key_join_pred key) input ak in
            let src_of out =
              let rec go outs maps =
                match outs, maps with
                | o :: outs, m :: maps -> if o = out then m else go outs maps
                | _ -> raise Not_found
              in
              go out_cols mapping
            in
            let defs = List.map (fun k -> (ak_col k, Expr.Col (src_of k))) out_key in
            Some (Op.project ~defs j))
        inputs
    in
    (match parts with
    | [] -> None
    | parts ->
      let cols = List.map ak_col out_key in
      let u = Op.union ~cols (List.map (fun p -> (p, cols)) parts) in
      Some (u, List.map (fun k -> (k, ak_col k)) out_key))
