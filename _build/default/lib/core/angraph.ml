module Op = Xqgm.Op
module Expr = Xqgm.Expr
module Value = Relkit.Value
module Database = Relkit.Database

type monitored = {
  graph : Xqgm.Op.t;
  node_col : string;
  key : string list;
}

type check =
  | No_check
  | Compare_cols of string list
  | Compare_nodes

type nested = {
  an_child : Xqgm.Op.t;
  an_link : string list;
  an_side : [ `Old | `New ];
  an_inner : Xqgm.Expr.t;
  an_cmp : Relkit.Ra.binop;
  an_rhs : Xqgm.Expr.t;
}

type t = {
  graph : Xqgm.Op.t;
  key : string list;
  old_col : string;
  new_col : string;
}

let old_pfx c = "old$" ^ c
let new_pfx c = "new$" ^ c

let expose g cols =
  match g.Op.node with
  | Op.Project { input; defs } ->
    let missing =
      List.filter (fun c -> not (List.exists (fun (o, _) -> o = c) defs)) cols
    in
    if missing = [] then g
    else Op.project ~defs:(defs @ List.map (fun c -> (c, Expr.Col c)) missing) input
  | _ ->
    invalid_arg "Angraph.expose: the path graph's top operator is not a projection"

(* Columns a condition references through the old$/new$ prefixes. *)
let cond_side_cols cond =
  List.filter_map
    (fun c ->
      let strip p = if String.length c > String.length p && String.sub c 0 (String.length p) = p then Some (String.sub c (String.length p) (String.length c - String.length p)) else None in
      match strip "old$" with
      | Some base -> Some base
      | None -> strip "new$")
    (Expr.cols cond)

let create ~schema_of ~event ~table ~check ?cond ?consts ?nested (monitored : monitored) =
  (* Expose whatever the comparison and the condition need as plain columns
     of the path graph. *)
  let extra =
    (match check with Compare_cols cs -> cs | No_check | Compare_nodes -> [])
    @ (match cond with Some c -> cond_side_cols c | None -> [])
    @ (match nested with Some ns -> ns.an_link | None -> [])
  in
  let g = if extra = [] then monitored.graph else expose monitored.graph extra in
  let gold = Op.to_old ~table g in
  let akd = Akgraph.create ~schema_of ~table ~dt:Op.Delta g in
  let akn = Akgraph.create ~schema_of ~table ~dt:Op.Nabla gold in
  match akd, akn with
  | None, None -> None
  | _ ->
    let key_pairs =
      match akd, akn with
      | Some (_, k), _ | _, Some (_, k) -> k
      | None, None -> assert false
    in
    let ak_cols = List.map snd key_pairs in
    let parts =
      List.filter_map
        (Option.map (fun (ak, (k : Akgraph.key)) ->
             (* project down to exactly the key columns, in key_pairs order *)
             ignore k;
             Op.project ~defs:(List.map (fun c -> (c, Expr.Col c)) ak_cols) ak))
        [ akd; akn ]
    in
    let ou = Op.union ~cols:ak_cols (List.map (fun p -> (p, ak_cols)) parts) in
    let g_cols = Op.cols g in
    let gnew = Op.project ~defs:(List.map (fun c -> (new_pfx c, Expr.Col c)) g_cols) g in
    let gold_r =
      Op.project ~defs:(List.map (fun c -> (old_pfx c, Expr.Col c)) g_cols) gold
    in
    let join_back side_pfx side =
      let pred =
        Expr.and_
          (List.map (fun (k, akc) -> Expr.eq (Expr.Col akc) (Expr.Col (side_pfx k))) key_pairs)
      in
      let j = Op.join ~pred ou side in
      (* drop the ak columns *)
      Op.project ~defs:(List.map (fun c -> (side_pfx c, Expr.Col (side_pfx c))) g_cols) j
    in
    let onew = join_back new_pfx gnew in
    let oold = join_back old_pfx gold_r in
    let full_key_pred =
      Expr.and_
        (List.map (fun k -> Expr.eq (Expr.Col (new_pfx k)) (Expr.Col (old_pfx k)))
           monitored.key)
    in
    let apply_cond side_subst body =
      let mapped_cond =
        Option.map
          (fun c ->
            side_subst
              (Expr.map_cols
                 (fun col ->
                   if col = "old_node" then old_pfx monitored.node_col
                   else if col = "new_node" then new_pfx monitored.node_col
                   else col)
                 c))
          cond
      in
      let body =
        match consts with
        | Some consts_op ->
          (* Trigger grouping: the condition becomes the predicate of the join
             with the constants table (Figure 14 — "converting select to
             join"), so an index on the constants columns turns the per-update
             cost into a probe regardless of the group size. *)
          let pred =
            match mapped_cond with Some c -> c | None -> Expr.Const (Value.Bool true)
          in
          Op.join ~pred body consts_op
        | None -> (
          match mapped_cond with Some c -> Op.select ~pred:c body | None -> body)
      in
      (* §5.1's nested condition: a per-(node, constants) count subquery,
         left-outer joined on the link columns and the constants key.  The
         constants key among the grouping columns is exactly the
         decorrelation move that keeps nested selections correct
         (Figure 15). *)
      match nested, consts with
      | None, _ -> body
      | Some _, None ->
        invalid_arg "Angraph: nested conditions require a constants operator"
      | Some ns, Some consts_op ->
        let consts_cols = Op.cols consts_op in
        let consts2 =
          match consts_op.Op.node with
          | Op.Table { table = tname; cols; _ } ->
            Op.table tname (List.map (fun (src, out) -> (src, "nc$" ^ out)) cols)
          | _ -> invalid_arg "Angraph: the constants operator must be a table scan"
        in
        let inner =
          Expr.map_cols
            (fun c -> if List.mem c consts_cols then "nc$" ^ c else c)
            ns.an_inner
        in
        let joined = Op.join ~pred:inner ns.an_child consts2 in
        let counted =
          Op.group_by
            ~keys:(ns.an_link @ [ "nc$cid" ])
            ~aggs:[ ("nc$cnt", Expr.Count) ]
            joined
        in
        let pfx = match ns.an_side with `Old -> old_pfx | `New -> new_pfx in
        let link_pred =
          Expr.and_
            (List.map (fun l -> Expr.eq (Expr.Col (pfx l)) (Expr.Col l)) ns.an_link
            @ [ Expr.eq (Expr.Col "cid") (Expr.Col "nc$cid") ])
        in
        let paired = Op.join ~kind:Op.Left_outer ~pred:link_pred body counted in
        let cnt = Expr.Col "nc$cnt" in
        (* a node with no qualifying children has no group: count it as 0 *)
        let pass =
          Expr.Binop
            ( Relkit.Ra.Or,
              Expr.Binop
                ( Relkit.Ra.And,
                  Expr.Not (Expr.Is_null cnt),
                  Expr.Binop (ns.an_cmp, cnt, ns.an_rhs) ),
              Expr.Binop
                ( Relkit.Ra.And,
                  Expr.Is_null cnt,
                  Expr.Binop (ns.an_cmp, Expr.Const (Value.Int 0), ns.an_rhs) ) )
        in
        Op.select ~pred:pass paired
    in
    let final ~key_side body =
      Op.project
        ~defs:
          (List.map (fun k -> (k, Expr.Col (key_side k))) monitored.key
          @ (match consts with
            | Some _ -> [ ("trig_ids", Expr.Col "trig_ids") ]
            | None -> [])
          @ [ ( "old_node",
                match event with
                | Database.Insert -> Expr.Const Value.Null
                | _ -> Expr.Col (old_pfx monitored.node_col) );
              ( "new_node",
                match event with
                | Database.Delete -> Expr.Const Value.Null
                | _ -> Expr.Col (new_pfx monitored.node_col) );
            ])
        body
    in
    let graph =
      match event with
      | Database.Update ->
        let paired = Op.join ~pred:full_key_pred onew oold in
        let checked =
          match check with
          | No_check -> paired
          | Compare_cols cs ->
            let same c =
              Expr.Binop
                ( Relkit.Ra.Or,
                  Expr.eq (Expr.Col (new_pfx c)) (Expr.Col (old_pfx c)),
                  Expr.Binop
                    ( Relkit.Ra.And,
                      Expr.Is_null (Expr.Col (new_pfx c)),
                      Expr.Is_null (Expr.Col (old_pfx c)) ) )
            in
            Op.select ~pred:(Expr.Not (Expr.and_ (List.map same cs))) paired
          | Compare_nodes ->
            Op.select
              ~pred:
                (Expr.Not
                   (Expr.Node_eq
                      ( Expr.Col (new_pfx monitored.node_col),
                        Expr.Col (old_pfx monitored.node_col) )))
              paired
        in
        final ~key_side:new_pfx (apply_cond (fun c -> c) checked)
      | Database.Insert ->
        let inserted = Op.join ~kind:Op.Left_anti ~pred:full_key_pred onew oold in
        final ~key_side:new_pfx (apply_cond (fun c -> c) inserted)
      | Database.Delete ->
        let deleted = Op.join ~kind:Op.Right_anti ~pred:full_key_pred onew oold in
        final ~key_side:old_pfx (apply_cond (fun c -> c) deleted)
    in
    Some { graph; key = monitored.key; old_col = "old_node"; new_col = "new_node" }
