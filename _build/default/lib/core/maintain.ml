module Xml = Xmlkit.Xml

type t = {
  mgr : Runtime.t;
  store : (string, Xml.t) Hashtbl.t;  (* canonical text -> node *)
  mutable deltas : int;
  trigger_names : string list;
}

let next_id =
  let n = ref 0 in
  fun () ->
    incr n;
    !n

let key node = Xml.to_string ~canonical:true node

let apply t fi =
  t.deltas <- t.deltas + 1;
  (match fi.Runtime.fi_old with
  | Some old_node -> Hashtbl.remove t.store (key old_node)
  | None -> ());
  match fi.Runtime.fi_new with
  | Some new_node -> Hashtbl.replace t.store (key new_node) new_node
  | None -> ()

let attach mgr ~path =
  let id = next_id () in
  let store = Hashtbl.create 64 in
  List.iter
    (fun node -> Hashtbl.replace store (key node) node)
    (Runtime.view_nodes mgr ~path);
  let action = Printf.sprintf "maintain$%d" id in
  let trigger_names =
    List.map
      (fun event -> Printf.sprintf "maintain$%d$%s" id event)
      [ "UPDATE"; "INSERT"; "DELETE" ]
  in
  let t = { mgr; store; deltas = 0; trigger_names } in
  Runtime.register_action mgr ~name:action (apply t);
  List.iter2
    (fun name event ->
      Runtime.create_trigger mgr
        (Printf.sprintf "CREATE TRIGGER %s AFTER %s ON %s DO %s(%s)" name event path
           action
           (match event with "DELETE" -> "OLD_NODE" | _ -> "NEW_NODE")))
    trigger_names
    [ "UPDATE"; "INSERT"; "DELETE" ];
  t

let current t =
  Hashtbl.fold (fun _ node acc -> node :: acc) t.store []
  |> List.sort Xml.compare

let deltas_applied t = t.deltas

let detach t = List.iter (Runtime.drop_trigger t.mgr) t.trigger_names
