lib/core/pushdown.mli: Relkit Xqgm
