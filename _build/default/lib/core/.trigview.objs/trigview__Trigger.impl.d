lib/core/trigger.ml: List Printf Relkit String Xquery
