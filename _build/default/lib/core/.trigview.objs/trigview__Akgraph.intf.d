lib/core/akgraph.mli: Relkit Xqgm
