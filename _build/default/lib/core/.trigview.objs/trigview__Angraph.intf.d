lib/core/angraph.mli: Relkit Xqgm
