lib/core/akgraph.ml: List Option Printf Relkit Xqgm
