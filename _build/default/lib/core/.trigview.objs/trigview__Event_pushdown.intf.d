lib/core/event_pushdown.mli: Format Relkit Xqgm
