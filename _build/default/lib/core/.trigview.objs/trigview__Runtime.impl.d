lib/core/runtime.ml: Angraph Array Event_pushdown Float Hashtbl Lazy List Option Printf Pushdown Relkit String Trigger Xmlkit Xqgm Xquery
