lib/core/maintain.ml: Hashtbl List Printf Runtime Xmlkit
