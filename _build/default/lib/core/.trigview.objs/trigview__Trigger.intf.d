lib/core/trigger.mli: Relkit Xquery
