lib/core/maintain.mli: Runtime Xmlkit
