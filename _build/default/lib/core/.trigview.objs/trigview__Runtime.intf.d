lib/core/runtime.mli: Relkit Xmlkit Xqgm
