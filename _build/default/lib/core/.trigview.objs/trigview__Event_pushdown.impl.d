lib/core/event_pushdown.ml: Format Hashtbl List Relkit Set String Xqgm
