lib/core/angraph.ml: Akgraph List Option Relkit String Xqgm
