lib/core/pushdown.ml: Array Buffer Hashtbl List Printf Relkit String Xmlkit Xqgm
