(** CreateANGraph (Figure 12 of the paper): build G_affected, the graph that
    produces the (OLD_NODE, NEW_NODE) pairs for a (table, event) pair.

    The graph unions the Δ- and ∇-side affected keys, joins the union back
    with the Path graph [G] and its pre-state version [G_old], and pairs the
    sides with the event-specific join: inner for UPDATE, left-anti for
    INSERT (no matching old node), right-anti for DELETE.

    For UPDATE, the spurious-update check of Appendix E.1/F is selected by
    [check]:
    - [No_check] — the view is injective w.r.t. the table (Theorem 3);
    - [Compare_cols cs] — compare the scalar columns [cs] (inputs of [G]'s
      top projection) relationally (Appendix F.4);
    - [Compare_nodes] — full structural node comparison (the tagger-level
      fallback). *)

(** A monitored portion of a view: the Path graph (Figure 5A), which output
    column holds the monitored node, and the canonical key of the top
    operator. *)
type monitored = {
  graph : Xqgm.Op.t;
  node_col : string;
  key : string list;
}

type check =
  | No_check
  | Compare_cols of string list
  | Compare_nodes

(** A nested-count condition (§5.1's hard case): a per-(node, constants)
    count subquery is joined in and the constants key is added to its
    grouping columns — the decorrelated form of Figure 15. *)
type nested = {
  an_child : Xqgm.Op.t;  (** the child level's operator *)
  an_link : string list;  (** columns linking child to monitored level *)
  an_side : [ `Old | `New ];
  an_inner : Xqgm.Expr.t;  (** inner selection: child columns + constants columns *)
  an_cmp : Relkit.Ra.binop;
  an_rhs : Xqgm.Expr.t;  (** over constants columns *)
}

type t = {
  graph : Xqgm.Op.t;  (** G_affected *)
  key : string list;  (** output key columns *)
  old_col : string;  (** ["old_node"]; NULL for INSERT events *)
  new_col : string;  (** ["new_node"]; NULL for DELETE events *)
}

(** Builds G_affected for one (event, table) pair.  Returns [None] when the
    view cannot be affected by changes to [table].

    An optional [cond] (the trigger's WHERE, compiled against the view) is
    applied after pairing: it may reference the key columns, ["old$" ^ c] /
    ["new$" ^ c] for any column [c] of [G], and the node columns via
    [old_node] / [new_node].

    For trigger grouping (§5.1), [consts] joins a constants-table operator in
    before the condition is applied; [cond] may then also reference the
    constants columns, and the operator's [trig_ids] column is carried to the
    output so the activation module can dispatch to every member of the
    group. *)
val create :
  schema_of:(string -> Relkit.Schema.t) ->
  event:Relkit.Database.event ->
  table:string ->
  check:check ->
  ?cond:Xqgm.Expr.t ->
  ?consts:Xqgm.Op.t ->
  ?nested:nested ->
  monitored ->
  t option

(** [expose g cols] extends the top projection of [g] with pass-through
    outputs for [cols] (input columns of that projection) when missing.
    @raise Invalid_argument if the top operator is not a projection. *)
val expose : Xqgm.Op.t -> string list -> Xqgm.Op.t
