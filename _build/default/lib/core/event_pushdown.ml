module Op = Xqgm.Op
module Expr = Xqgm.Expr
module Database = Relkit.Database
module S = Set.Make (String)

type relational_event = {
  ev_table : string;
  ev_event : Database.event;
}

let pp_event ppf { ev_table; ev_event } =
  Format.fprintf ppf "%s ON %s" (Database.string_of_event ev_event) ev_table

(* An event on an operator's output: INSERT(o), DELETE(o), or UPDATE(o, C)
   where C is the set of output columns that changed (Appendix C). *)
type op_event =
  | Ins
  | Del
  | Upd of S.t

let all_cols op = S.of_list (Op.cols op)

(* Columns of the input that feed the given output columns of a Project. *)
let project_source_cols defs out_cols =
  List.fold_left
    (fun acc (o, e) ->
      if S.mem o out_cols then S.union acc (S.of_list (Expr.cols e)) else acc)
    S.empty defs

(* GetSrcEvents (Figure 19): recurse the Table 4 rules down to base tables. *)
let rec src_events (op : Op.t) (e : op_event) : relational_event list =
  match op.Op.node with
  | Op.Table { table; binding = _; _ } -> (
    (* An SQL UPDATE statement that rewrites a primary key inserts one key
       and deletes another (Definitions 2/3 identify rows by key), so
       table-level INSERT/DELETE events are also caused by UPDATE
       statements.  Pruned transition tables keep the no-op case cheap. *)
    match e with
    | Ins ->
      [ { ev_table = table; ev_event = Database.Insert };
        { ev_table = table; ev_event = Database.Update };
      ]
    | Del ->
      [ { ev_table = table; ev_event = Database.Delete };
        { ev_table = table; ev_event = Database.Update };
      ]
    | Upd _ -> [ { ev_table = table; ev_event = Database.Update } ])
  | Op.Select { input; pred } -> (
    let sigma = S.of_list (Expr.cols pred) in
    match e with
    | Ins ->
      (* INSERT(O) <- INSERT(I) or UPDATE(I, Csigma) *)
      src_events input Ins @ src_events input (Upd sigma)
    | Del -> src_events input Del @ src_events input (Upd sigma)
    | Upd c -> src_events input (Upd c))
  | Op.Project { input; defs } -> (
    match e with
    | Ins -> src_events input Ins
    | Del -> src_events input Del
    | Upd c -> src_events input (Upd (project_source_cols defs c)))
  | Op.Join { kind = _; left; right; pred } -> (
    let sigma = S.of_list (Expr.cols pred) in
    let both f = f left @ f right in
    match e with
    | Ins ->
      (* a tuple can appear because an input tuple appeared, or because an
         update made the join predicate become true *)
      both (fun i -> src_events i Ins) @ both (fun i -> src_events i (Upd sigma))
    | Del -> both (fun i -> src_events i Del) @ both (fun i -> src_events i (Upd sigma))
    | Upd c ->
      let for_side side =
        let side_cols = all_cols side in
        let c_side = S.inter c side_cols in
        let upd = if S.is_empty c_side then [] else src_events side (Upd c_side) in
        (* updates to join columns move tuples between groups of partners *)
        let sigma_side = S.inter sigma side_cols in
        let upd_sigma =
          if S.is_empty sigma_side then [] else src_events side (Upd sigma_side)
        in
        upd @ upd_sigma
      in
      for_side left @ for_side right)
  | Op.Group_by { input; keys; aggs; _ } -> (
    let g = S.of_list keys in
    let agg_inputs =
      List.fold_left (fun acc (_, a) -> S.union acc (S.of_list (Expr.agg_cols a))) S.empty aggs
    in
    match e with
    | Ins -> src_events input Ins @ src_events input (Upd g)
    | Del -> src_events input Del @ src_events input (Upd g)
    | Upd c ->
      let out_keys = S.inter c g in
      let out_aggs = S.diff c g in
      let from_keys =
        if S.is_empty out_keys then [] else src_events input (Upd out_keys)
      in
      (* An aggregate changes when contributing rows change value, appear, or
         disappear (Table 4: INSERT(I)/DELETE(I) unless C subset of G). *)
      let from_aggs =
        if S.is_empty out_aggs then []
        else
          src_events input (Upd (S.union agg_inputs g))
          @ src_events input Ins @ src_events input Del
      in
      from_keys @ from_aggs)
  | Op.Union { inputs; cols } -> (
    let map_back mapping c_out =
      (* output column set -> this input's column set *)
      List.fold_left2
        (fun acc out src -> if S.mem out c_out then S.add src acc else acc)
        S.empty cols mapping
    in
    match e with
    | Ins | Del ->
      (* Any input event (including updates that create/destroy duplicates)
         can insert into or delete from a duplicate-removing union. *)
      List.concat_map
        (fun (i, _) -> src_events i Ins @ src_events i Del @ src_events i (Upd (all_cols i)))
        inputs
    | Upd c ->
      List.concat_map (fun (i, mapping) -> src_events i (Upd (map_back mapping c))) inputs)

let dedup events =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun ev ->
      let k = (ev.ev_table, ev.ev_event) in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    events

let source_events op (event : Database.event) =
  let e =
    match event with
    | Database.Insert -> Ins
    | Database.Delete -> Del
    | Database.Update -> Upd (all_cols op)
  in
  dedup (src_events op e)

let relevant_columns op ~table =
  Op.fold op ~init:S.empty ~f:(fun acc o ->
      match o.Op.node with
      | Op.Table { table = t; cols; _ } when t = table ->
        S.union acc (S.of_list (List.map fst cols))
      | _ -> acc)
  |> S.elements
