module Database = Relkit.Database

type t = {
  name : string;
  event : Database.event;
  path : Xquery.Ast.path;
  condition : Xquery.Ast.expr option;
  action : string;
  args : Xquery.Ast.expr list;
}

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Parse_error msg)) fmt

(* Find a top-level keyword (outside quotes, parentheses and brackets),
   case-insensitively, at word boundaries.  Returns its offset. *)
let find_keyword text kw ~from =
  let n = String.length text and k = String.length kw in
  let kw = String.uppercase_ascii kw in
  let depth = ref 0 in
  let quote = ref None in
  let result = ref None in
  let i = ref from in
  while !result = None && !i + k <= n do
    let c = text.[!i] in
    (match !quote with
    | Some q -> if c = q then quote := None
    | None -> (
      match c with
      | '\'' | '"' -> quote := Some c
      | '(' | '[' | '{' -> incr depth
      | ')' | ']' | '}' -> decr depth
      | _ ->
        if !depth = 0 && String.uppercase_ascii (String.sub text !i k) = kw then begin
          let before_ok = !i = 0 || not (Xquery.Parser.is_word_char text.[!i - 1]) in
          let after_ok = !i + k >= n || not (Xquery.Parser.is_word_char text.[!i + k]) in
          if before_ok && after_ok then result := Some !i
        end));
    incr i
  done;
  !result

let slice text a b = String.trim (String.sub text a (b - a))

let parse text =
  let must kw from =
    match find_keyword text kw ~from with
    | Some i -> i
    | None -> fail "expected %s in trigger definition" kw
  in
  let create_i = must "CREATE" 0 in
  let trigger_i = must "TRIGGER" create_i in
  let after_i = must "AFTER" trigger_i in
  let on_i = must "ON" after_i in
  let do_i = must "DO" on_i in
  let where_i = find_keyword text "WHERE" ~from:on_i in
  let name = slice text (trigger_i + 7) after_i in
  if name = "" || String.contains name ' ' then fail "malformed trigger name %S" name;
  let event_str = String.uppercase_ascii (slice text (after_i + 5) on_i) in
  let event =
    match event_str with
    | "UPDATE" -> Database.Update
    | "INSERT" -> Database.Insert
    | "DELETE" -> Database.Delete
    | s -> fail "unknown event %S (expected UPDATE, INSERT or DELETE)" s
  in
  let path_end = match where_i with Some w when w < do_i -> w | _ -> do_i in
  let path_text = slice text (on_i + 2) path_end in
  let path =
    try Xquery.Parser.parse_path path_text
    with Xquery.Parser.Parse_error msg -> fail "bad trigger path: %s" msg
  in
  let condition =
    match where_i with
    | Some w when w < do_i -> (
      let cond_text = slice text (w + 5) do_i in
      try Some (Xquery.Parser.parse_expr cond_text)
      with Xquery.Parser.Parse_error msg -> fail "bad trigger condition: %s" msg)
    | _ -> None
  in
  let action_text = slice text (do_i + 2) (String.length text) in
  (* ActionName(arg, arg, ...) *)
  match String.index_opt action_text '(' with
  | None ->
    if action_text = "" then fail "missing trigger action";
    { name; event; path; condition; action = action_text; args = [] }
  | Some p ->
    let action = String.trim (String.sub action_text 0 p) in
    if action = "" then fail "missing action name";
    let rest = String.sub action_text p (String.length action_text - p) in
    if String.length rest < 2 || rest.[String.length rest - 1] <> ')' then
      fail "malformed action argument list";
    let inner = String.sub rest 1 (String.length rest - 2) in
    (* split on top-level commas *)
    let args = ref [] in
    let depth = ref 0 and quote = ref None and start = ref 0 in
    String.iteri
      (fun i c ->
        match !quote with
        | Some q -> if c = q then quote := None
        | None -> (
          match c with
          | '\'' | '"' -> quote := Some c
          | '(' | '[' | '{' -> incr depth
          | ')' | ']' | '}' -> decr depth
          | ',' when !depth = 0 ->
            args := String.sub inner !start (i - !start) :: !args;
            start := i + 1
          | _ -> ()))
      inner;
    let args =
      if String.trim inner = "" then []
      else
        List.rev (String.sub inner !start (String.length inner - !start) :: !args)
    in
    let args =
      List.map
        (fun a ->
          try Xquery.Parser.parse_expr (String.trim a)
          with Xquery.Parser.Parse_error msg -> fail "bad action argument %S: %s" a msg)
        args
    in
    { name; event; path; condition; action; args }

let to_string t =
  Printf.sprintf "CREATE TRIGGER %s AFTER %s ON %s%s DO %s(%s)" t.name
    (Database.string_of_event t.event)
    (Xquery.Ast.path_to_string t.path)
    (match t.condition with
    | Some c -> " WHERE " ^ Xquery.Ast.expr_to_string c
    | None -> "")
    t.action
    (String.concat ", " (List.map Xquery.Ast.expr_to_string t.args))
