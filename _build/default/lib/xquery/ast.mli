(** Abstract syntax for the supported XQuery subset (Appendix D of the
    paper): FLWOR expressions, element constructors, paths with
    child/descendant/attribute/self axes over the default view or bound
    variables, comparisons, arithmetic, boolean connectives, aggregate and
    sequence functions, and quantified expressions.  No parent/sibling axes,
    no type expressions, no user-defined functions. *)

type cmp = Eq | Neq | Lt | Le | Gt | Ge

type arith = Add | Sub | Mul | Div | Mod

type axis = Child | Descendant | Attribute | Self

type expr =
  | Lit of Relkit.Value.t
  | Path of path
  | Flwor of {
      clauses : clause list;
      where : expr option;
      return : expr;
    }
  | Elem of {
      tag : string;
      attrs : (string * expr) list;
      content : content list;
    }
  | Cmp of cmp * expr * expr
  | Arith of arith * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Call of string * expr list
      (** count, sum, min, max, avg, distinct, exists — checked at compile
          time *)
  | Quantified of {
      universal : bool;  (** [every]; false = [some] *)
      var : string;
      source : expr;
      satisfies : expr;
    }

and clause =
  | For of string * expr  (** for $x in e *)
  | Let of string * expr  (** let $x := e *)

and content =
  | C_text of string
  | C_elem of expr  (** a nested element constructor *)
  | C_enclosed of expr  (** { e } *)

and path = {
  root : root;
  steps : step list;
}

and root =
  | R_view of string  (** view("name") *)
  | R_var of string  (** $x; the context item [.] is the variable ["."] *)

and step = {
  axis : axis;
  name : string;  (** "*" for the wildcard test *)
  predicate : expr option;
}

val expr_to_string : expr -> string
val path_to_string : path -> string
