(** Compilation of XQuery view definitions to XQGM (the XPERANTO front-end
    of §2.1).

    The compiler handles the paper's hierarchical-FLWOR class of views:
    FLWOR expressions iterating over default-view table rows (or over
    [distinct(...)] of a column), [let]-bound correlated row sets used in
    aggregates and nested loops, [where] predicates mixing scalar comparisons
    with aggregate conditions, quantified expressions, and element
    constructors nesting further FLWORs to arbitrary depth.  Anything outside
    this class raises {!Unsupported} with a description.

    Besides the XQGM graph, compilation produces a {!view_tree}: the
    element-structure skeleton of the view with, per level, the operator
    producing that level's elements, its canonical key, and provenance from
    attributes / simple child elements back to columns.  View composition
    (trigger paths, conditions) works on this tree. *)

exception Unsupported of string

type view_tree = {
  elem_tag : string;
  op : Xqgm.Op.t;  (** produces one tuple per element of this level *)
  node_col : string;  (** the column holding the constructed element *)
  key : string list;  (** canonical key of [op] *)
  fields : (string * string) list;
      (** provenance: ["@attr"], simple child-element tags, and
          ["count(tag)"] for exposed child counts, mapped to scalar columns
          of [op] *)
  corr : string list;
      (** correlation columns linking this level to its parent (exposed in
          both levels' operators); empty at the root.  Used by nested
          trigger-condition grouping (§5.1). *)
  children : view_tree list;
}

type view = {
  view_name : string;
  definition : Ast.expr;
  tree : view_tree;
}

(** Compiles a view definition (as parsed by {!Parser.parse_expr}).  The
    definition must be a single element constructor (the document element).
    @raise Unsupported on constructs outside the supported class. *)
val compile_view :
  schema_of:(string -> Relkit.Schema.t) -> name:string -> Ast.expr -> view

(** Convenience: parse + compile.
    @raise Parser.Parse_error / Unsupported. *)
val view_of_string :
  schema_of:(string -> Relkit.Schema.t) -> name:string -> string -> view

(** Materializes the view's document element through the reference
    evaluator (used by tests, the CLI and the MATERIALIZED baseline). *)
val materialize : Relkit.Ra_eval.ctx -> view -> Xmlkit.Xml.t

(** Operator mappings shared with {!Compose}. *)
val cmp_op : Ast.cmp -> Relkit.Ra.binop

val arith_op : Ast.arith -> Relkit.Ra.binop
