type cmp = Eq | Neq | Lt | Le | Gt | Ge
type arith = Add | Sub | Mul | Div | Mod
type axis = Child | Descendant | Attribute | Self

type expr =
  | Lit of Relkit.Value.t
  | Path of path
  | Flwor of {
      clauses : clause list;
      where : expr option;
      return : expr;
    }
  | Elem of {
      tag : string;
      attrs : (string * expr) list;
      content : content list;
    }
  | Cmp of cmp * expr * expr
  | Arith of arith * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Call of string * expr list
  | Quantified of {
      universal : bool;
      var : string;
      source : expr;
      satisfies : expr;
    }

and clause =
  | For of string * expr
  | Let of string * expr

and content =
  | C_text of string
  | C_elem of expr
  | C_enclosed of expr

and path = {
  root : root;
  steps : step list;
}

and root =
  | R_view of string
  | R_var of string

and step = {
  axis : axis;
  name : string;
  predicate : expr option;
}

let string_of_cmp = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let string_of_arith = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "div"
  | Mod -> "mod"

let rec expr_to_string = function
  | Lit v -> Relkit.Value.to_sql_literal v
  | Path p -> path_to_string p
  | Flwor { clauses; where; return } ->
    let clause_str = function
      | For (v, e) -> Printf.sprintf "for $%s in %s" v (expr_to_string e)
      | Let (v, e) -> Printf.sprintf "let $%s := %s" v (expr_to_string e)
    in
    Printf.sprintf "%s%s return %s"
      (String.concat " " (List.map clause_str clauses))
      (match where with Some w -> " where " ^ expr_to_string w | None -> "")
      (expr_to_string return)
  | Elem { tag; attrs; content } ->
    let attr_str =
      String.concat ""
        (List.map (fun (k, e) -> Printf.sprintf " %s=\"{%s}\"" k (expr_to_string e)) attrs)
    in
    let content_str = function
      | C_text t -> t
      | C_elem e -> expr_to_string e
      | C_enclosed e -> "{" ^ expr_to_string e ^ "}"
    in
    Printf.sprintf "<%s%s>%s</%s>" tag attr_str
      (String.concat "" (List.map content_str content))
      tag
  | Cmp (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_string a) (string_of_cmp op) (expr_to_string b)
  | Arith (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_string a) (string_of_arith op) (expr_to_string b)
  | And (a, b) -> Printf.sprintf "(%s and %s)" (expr_to_string a) (expr_to_string b)
  | Or (a, b) -> Printf.sprintf "(%s or %s)" (expr_to_string a) (expr_to_string b)
  | Not e -> Printf.sprintf "not(%s)" (expr_to_string e)
  | Call (f, args) ->
    Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr_to_string args))
  | Quantified { universal; var; source; satisfies } ->
    Printf.sprintf "%s $%s in %s satisfies %s"
      (if universal then "every" else "some")
      var (expr_to_string source) (expr_to_string satisfies)

and path_to_string { root; steps } =
  let root_str =
    match root with
    | R_view v -> Printf.sprintf "view(\"%s\")" v
    | R_var "." -> "."
    | R_var v -> "$" ^ v
  in
  let step_str s =
    let sep = match s.axis with Descendant -> "//" | _ -> "/" in
    let name =
      match s.axis with
      | Attribute -> "@" ^ s.name
      | Self -> "."
      | _ -> s.name
    in
    sep ^ name
    ^ match s.predicate with Some p -> "[" ^ expr_to_string p ^ "]" | None -> ""
  in
  root_str ^ String.concat "" (List.map step_str steps)
