lib/xquery/ast.ml: List Printf Relkit String
