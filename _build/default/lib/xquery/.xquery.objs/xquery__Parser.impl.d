lib/xquery/parser.ml: Ast Buffer List Option Printf Relkit String
