lib/xquery/ast.mli: Relkit
