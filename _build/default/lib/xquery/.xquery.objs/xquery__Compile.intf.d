lib/xquery/compile.mli: Ast Relkit Xmlkit Xqgm
