lib/xquery/compose.mli: Ast Compile Relkit Xmlkit Xqgm
