lib/xquery/compile.ml: Array Ast List Option Parser Printf Relkit Xqgm
