lib/xquery/compose.ml: Ast Compile Float List Printf Relkit String Xmlkit Xqgm
