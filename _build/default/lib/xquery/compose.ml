module Op = Xqgm.Op
module Expr = Xqgm.Expr
module Value = Relkit.Value
module Xml = Xmlkit.Xml

exception Compose_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Compose_error msg)) fmt

type monitored = {
  m_op : Xqgm.Op.t;
  m_node_col : string;
  m_key : string list;
  m_tree : Compile.view_tree;
}

(* predicate over a level's own fields, e.g. product[@name = 'CRT 15'] *)
let rec compile_level_pred (tree : Compile.view_tree) (e : Ast.expr) : Expr.t =
  let field name =
    match List.assoc_opt name tree.Compile.fields with
    | Some col -> Expr.Col col
    | None -> fail "element %S exposes no field %S" tree.Compile.elem_tag name
  in
  match e with
  | Ast.Lit v -> Expr.Const v
  | Ast.Cmp (op, a, b) ->
    Expr.Binop (Compile.cmp_op op, compile_level_pred tree a, compile_level_pred tree b)
  | Ast.Arith (op, a, b) ->
    Expr.Binop (Compile.arith_op op, compile_level_pred tree a, compile_level_pred tree b)
  | Ast.And (a, b) ->
    Expr.Binop (Relkit.Ra.And, compile_level_pred tree a, compile_level_pred tree b)
  | Ast.Or (a, b) ->
    Expr.Binop (Relkit.Ra.Or, compile_level_pred tree a, compile_level_pred tree b)
  | Ast.Not e -> Expr.Not (compile_level_pred tree e)
  | Ast.Path { root = Ast.R_var "."; steps = [ { Ast.axis = Ast.Attribute; name; _ } ] } ->
    field ("@" ^ name)
  | Ast.Path { root = Ast.R_var "."; steps = [ { Ast.name; predicate = None; _ } ] } ->
    field name
  | Ast.Call ("count", [ Ast.Path { root = Ast.R_var "."; steps = [ { Ast.name; _ } ] } ]) ->
    field ("count(" ^ name ^ ")")
  | e -> fail "unsupported path predicate %s" (Ast.expr_to_string e)

let compose_path (view : Compile.view) (path : Ast.path) : monitored =
  (match path.Ast.root with
  | Ast.R_view v when v = view.Compile.view_name -> ()
  | Ast.R_view v -> fail "path is over view %S, not %S" v view.Compile.view_name
  | Ast.R_var _ -> fail "a trigger path must be rooted at view(...)");
  let rec walk ~first (trees : Compile.view_tree list) steps =
    match steps with
    | [] -> fail "empty trigger path"
    | step :: rest ->
      let matches t = t.Compile.elem_tag = step.Ast.name || step.Ast.name = "*" in
      let candidates =
        match step.Ast.axis with
        | Ast.Child ->
          (* the paper writes view('catalog')/product: the first step selects
             among the document element's children, or the document element
             itself *)
          let kids = List.concat_map (fun t -> t.Compile.children) trees in
          if first then List.filter matches (trees @ kids) else List.filter matches kids
        | Ast.Descendant ->
          let rec descend t =
            (if matches t then [ t ] else []) @ List.concat_map descend t.Compile.children
          in
          List.concat_map descend trees
        | Ast.Self -> trees
        | Ast.Attribute -> fail "a trigger path cannot end on an attribute"
      in
      (match candidates with
      | [] -> fail "no element %S along the trigger path" step.Ast.name
      | _ :: _ :: _ -> fail "ambiguous trigger path at %S" step.Ast.name
      | [ tree ] ->
        if rest <> [] then begin
          if step.Ast.predicate <> None then
            fail "predicates are only supported on the final path step";
          walk ~first:false [ tree ] rest
        end
        else begin
          let op =
            match step.Ast.predicate with
            | None -> tree.Compile.op
            | Some p -> Op.select ~pred:(compile_level_pred tree p) tree.Compile.op
          in
          { m_op = op;
            m_node_col = tree.Compile.node_col;
            m_key = tree.Compile.key;
            m_tree = tree;
          }
        end)
  in
  walk ~first:true [ view.Compile.tree ] path.Ast.steps

(* --- conditions over OLD_NODE / NEW_NODE --- *)

let node_side = function
  | "OLD_NODE" -> Some "old$"
  | "NEW_NODE" -> Some "new$"
  | _ -> None

let compile_condition (m : monitored) (e : Ast.expr) : Expr.t option =
  let field name =
    match List.assoc_opt name m.m_tree.Compile.fields with
    | Some col -> col
    | None -> raise Exit
  in
  let rec go = function
    | Ast.Lit v -> Expr.Const v
    | Ast.Cmp (op, a, b) -> Expr.Binop (Compile.cmp_op op, go a, go b)
    | Ast.Arith (op, a, b) -> Expr.Binop (Compile.arith_op op, go a, go b)
    | Ast.And (a, b) -> Expr.Binop (Relkit.Ra.And, go a, go b)
    | Ast.Or (a, b) -> Expr.Binop (Relkit.Ra.Or, go a, go b)
    | Ast.Not e -> Expr.Not (go e)
    | Ast.Path { root = Ast.R_var v; steps } -> (
      match node_side v, steps with
      | Some pfx, [ { Ast.axis = Ast.Attribute; name; _ } ] ->
        Expr.Col (pfx ^ field ("@" ^ name))
      | Some pfx, [ { Ast.axis = Ast.Child | Ast.Self; name; predicate = None } ] ->
        Expr.Col (pfx ^ field name)
      | _ -> raise Exit)
    | Ast.Call
        ("count", [ Ast.Path { root = Ast.R_var v; steps = [ { Ast.name; predicate = None; _ } ] } ])
      -> (
      match node_side v with
      | Some pfx -> Expr.Col (pfx ^ field ("count(" ^ name ^ ")"))
      | None -> raise Exit)
    | _ -> raise Exit
  in
  match go e with expr -> Some expr | exception Exit -> None

(* --- nested-count conditions (§5.1) --- *)

type nested_count = {
  nc_side : [ `Old | `New ];
  nc_child : Compile.view_tree;
  nc_link : string list;
  nc_inner : Expr.t;
  nc_cmp : Relkit.Ra.binop;
  nc_rhs : Expr.t;
}

let rec conjuncts = function
  | Ast.And (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let recombine = function
  | [] -> None
  | e :: rest -> Some (List.fold_left (fun acc c -> Ast.And (acc, c)) e rest)

let compile_nested_count (m : monitored) (e : Ast.expr) =
  let try_conjunct = function
    | Ast.Cmp
        ( op,
          Ast.Call
            ( "count",
              [ Ast.Path
                  { root = Ast.R_var v;
                    steps = [ { Ast.axis = Ast.Child; name = tag; predicate = Some p } ];
                  }
              ] ),
          rhs ) -> (
      match node_side v with
      | None -> None
      | Some _ -> (
        let side = if v = "OLD_NODE" then `Old else `New in
        match
          List.find_opt
            (fun (t : Compile.view_tree) -> t.Compile.elem_tag = tag)
            m.m_tree.Compile.children
        with
        | Some child when child.Compile.corr <> [] -> (
          match compile_level_pred child p, rhs with
          | inner, Ast.Lit value ->
            Some
              { nc_side = side;
                nc_child = child;
                nc_link = child.Compile.corr;
                nc_inner = inner;
                nc_cmp = Compile.cmp_op op;
                nc_rhs = Expr.Const value;
              }
          | _, _ -> None
          | exception Compose_error _ -> None)
        | _ -> None))
    | _ -> None
  in
  let rec split seen = function
    | [] -> None
    | c :: rest -> (
      match try_conjunct c with
      | Some nc -> Some (nc, recombine (List.rev seen @ rest))
      | None -> split (c :: seen) rest)
  in
  split [] (conjuncts e)

(* --- middleware fallback over materialized nodes --- *)

let xpath_cmp : Ast.cmp -> Xmlkit.Xpath.cmp = function
  | Ast.Eq -> Xmlkit.Xpath.Eq
  | Ast.Neq -> Xmlkit.Xpath.Neq
  | Ast.Lt -> Xmlkit.Xpath.Lt
  | Ast.Le -> Xmlkit.Xpath.Le
  | Ast.Gt -> Xmlkit.Xpath.Gt
  | Ast.Ge -> Xmlkit.Xpath.Ge

let rec to_xpath_steps steps =
  List.map
    (fun (s : Ast.step) ->
      let axis =
        match s.Ast.axis with
        | Ast.Child -> Xmlkit.Xpath.Child
        | Ast.Descendant -> Xmlkit.Xpath.Descendant
        | Ast.Attribute -> Xmlkit.Xpath.Attribute
        | Ast.Self -> Xmlkit.Xpath.Self
      in
      let preds =
        match s.Ast.predicate with
        | None -> []
        | Some p -> [ to_xpath_pred p ]
      in
      { Xmlkit.Xpath.axis;
        test = (if s.Ast.name = "*" then Xmlkit.Xpath.Any else Xmlkit.Xpath.Name s.Ast.name);
        preds;
      })
    steps

and to_xpath_pred = function
  | Ast.And (a, b) -> Xmlkit.Xpath.And (to_xpath_pred a, to_xpath_pred b)
  | Ast.Or (a, b) -> Xmlkit.Xpath.Or (to_xpath_pred a, to_xpath_pred b)
  | Ast.Not e -> Xmlkit.Xpath.Not (to_xpath_pred e)
  | Ast.Cmp (op, a, b) -> Xmlkit.Xpath.Cmp (xpath_cmp op, to_xpath_operand a, to_xpath_operand b)
  | Ast.Path p -> Xmlkit.Xpath.Exists (to_xpath_relative p)
  | e -> fail "unsupported path predicate %s in fallback condition" (Ast.expr_to_string e)

and to_xpath_operand = function
  | Ast.Lit (Value.Int i) -> Xmlkit.Xpath.Num (float_of_int i)
  | Ast.Lit (Value.Float f) -> Xmlkit.Xpath.Num f
  | Ast.Lit v -> Xmlkit.Xpath.Lit (Value.to_string v)
  | Ast.Path p -> Xmlkit.Xpath.Path (to_xpath_relative p)
  | e -> fail "unsupported predicate operand %s in fallback condition" (Ast.expr_to_string e)

and to_xpath_relative (p : Ast.path) =
  match p.Ast.root with
  | Ast.R_var "." -> { Xmlkit.Xpath.absolute = false; steps = to_xpath_steps p.Ast.steps }
  | _ -> fail "predicate paths must be relative to the context item"


let condition_fallback (e : Ast.expr) ~old_node ~new_node : bool =
  (* [bindings] carries quantifier variables, bound to nodes *)
  let node_of bindings = function
    | "OLD_NODE" -> old_node
    | "NEW_NODE" -> new_node
    | v -> (
      match List.assoc_opt v bindings with
      | Some n -> Some n
      | None -> fail "unbound variable $%s in a trigger condition" v)
  in
  let nodes_of_path bindings (p : Ast.path) =
    match p.Ast.root with
    | Ast.R_var v -> (
      match node_of bindings v with
      | None -> []
      | Some node ->
        if p.Ast.steps = [] then [ node ]
        else
          let xp = { Xmlkit.Xpath.absolute = false; steps = to_xpath_steps p.Ast.steps } in
          Xmlkit.Xpath.eval node xp)
    | Ast.R_view _ -> fail "view paths are not allowed in trigger conditions"
  in
  let strings_of_path bindings p = List.map Xml.text_content (nodes_of_path bindings p) in
  let num s = float_of_string_opt (String.trim s) in
  let cmp_strings op a b =
    let c =
      match num a, num b with
      | Some x, Some y -> Float.compare x y
      | _ -> String.compare a b
    in
    match (op : Ast.cmp) with
    | Ast.Eq -> c = 0
    | Ast.Neq -> c <> 0
    | Ast.Lt -> c < 0
    | Ast.Le -> c <= 0
    | Ast.Gt -> c > 0
    | Ast.Ge -> c >= 0
  in
  let values bindings = function
    | Ast.Lit v -> [ Value.to_string v ]
    | Ast.Path p -> strings_of_path bindings p
    | Ast.Call ("count", [ Ast.Path p ]) ->
      [ string_of_int (List.length (strings_of_path bindings p)) ]
    | Ast.Call (("sum" | "min" | "max" | "avg") as fn, [ Ast.Path p ]) -> (
      let nums = List.filter_map num (strings_of_path bindings p) in
      match nums with
      | [] -> []
      | _ ->
        let v =
          match fn with
          | "sum" -> List.fold_left ( +. ) 0.0 nums
          | "min" -> List.fold_left Float.min Float.infinity nums
          | "max" -> List.fold_left Float.max Float.neg_infinity nums
          | "avg" -> List.fold_left ( +. ) 0.0 nums /. float_of_int (List.length nums)
          | _ -> assert false
        in
        [ string_of_float v ])
    | Ast.Arith _ -> fail "arithmetic over node values is not supported in fallback conditions"
    | e -> fail "unsupported condition operand %s" (Ast.expr_to_string e)
  in
  let rec go bindings = function
    | Ast.And (a, b) -> go bindings a && go bindings b
    | Ast.Or (a, b) -> go bindings a || go bindings b
    | Ast.Not e -> not (go bindings e)
    | Ast.Cmp (op, a, b) ->
      List.exists
        (fun x -> List.exists (cmp_strings op x) (values bindings b))
        (values bindings a)
    | Ast.Call ("exists", [ Ast.Path p ]) -> strings_of_path bindings p <> []
    | Ast.Lit (Value.Bool b) -> b
    | Ast.Quantified { universal; var; source = Ast.Path p; satisfies } ->
      let nodes = nodes_of_path bindings p in
      let holds n = go ((var, n) :: bindings) satisfies in
      if universal then List.for_all holds nodes else List.exists holds nodes
    | e -> fail "unsupported condition %s" (Ast.expr_to_string e)
  in
  go [] e

let validate_fallback (e : Ast.expr) : (unit, string) result =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e in
  let path_ok bound (p : Ast.path) =
    (match p.Ast.root with
    | Ast.R_var ("OLD_NODE" | "NEW_NODE") -> Ok ()
    | Ast.R_var v when List.mem v bound -> Ok ()
    | Ast.R_var v -> err "unbound variable $%s" v
    | Ast.R_view _ -> err "view paths are not allowed in trigger conditions")
    |> fun r ->
    match r with
    | Error _ as e -> e
    | Ok () -> (
      match to_xpath_steps p.Ast.steps with
      | (_ : Xmlkit.Xpath.step list) -> Ok ()
      | exception Compose_error m -> Error m)
  in
  let rec operand_ok bound = function
    | Ast.Lit _ -> Ok ()
    | Ast.Path p -> path_ok bound p
    | Ast.Call (("count" | "sum" | "min" | "max" | "avg"), [ Ast.Path p ]) -> path_ok bound p
    | e -> err "unsupported condition operand %s" (Ast.expr_to_string e)
  and go bound = function
    | Ast.And (a, b) | Ast.Or (a, b) ->
      let* () = go bound a in
      go bound b
    | Ast.Not e -> go bound e
    | Ast.Cmp (_, a, b) ->
      let* () = operand_ok bound a in
      operand_ok bound b
    | Ast.Call ("exists", [ Ast.Path p ]) -> path_ok bound p
    | Ast.Lit (Value.Bool _) -> Ok ()
    | Ast.Quantified { var; source = Ast.Path p; satisfies; _ } ->
      let* () = path_ok bound p in
      go (var :: bound) satisfies
    | e -> err "unsupported condition %s" (Ast.expr_to_string e)
  in
  go [] e
