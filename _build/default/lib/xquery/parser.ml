module Value = Relkit.Value

exception Parse_error of string

type state = {
  input : string;
  mutable pos : int;
}

let fail st fmt =
  Printf.ksprintf
    (fun msg ->
      let around =
        let a = max 0 (st.pos - 15) in
        let b = min (String.length st.input) (st.pos + 15) in
        String.sub st.input a (b - a)
      in
      raise (Parse_error (Printf.sprintf "%s at offset %d (near %S)" msg st.pos around)))
    fmt

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.input then Some st.input.[st.pos + 1] else None

let advance st = st.pos <- st.pos + 1
let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let rec skip_ws st =
  (match peek st with
  | Some c when is_space c ->
    advance st;
    skip_ws st
  | _ -> ());
  (* XQuery comments: (: … :) *)
  if
    st.pos + 1 < String.length st.input
    && st.input.[st.pos] = '('
    && st.input.[st.pos + 1] = ':'
  then begin
    let rec close () =
      if st.pos + 1 >= String.length st.input then fail st "unterminated comment"
      else if st.input.[st.pos] = ':' && st.input.[st.pos + 1] = ')' then begin
        advance st;
        advance st
      end
      else begin
        advance st;
        close ()
      end
    in
    advance st;
    advance st;
    close ();
    skip_ws st
  end

let starts_with st s =
  let n = String.length s in
  st.pos + n <= String.length st.input && String.sub st.input st.pos n = s

let eat st s =
  if starts_with st s then begin
    st.pos <- st.pos + String.length s;
    true
  end
  else false

let expect st s = if not (eat st s) then fail st "expected %S" s

let is_name_start = function 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true
  | _ -> false

let is_word_char = is_name_char

let read_name st =
  skip_ws st;
  (match peek st with
  | Some c when is_name_start c -> ()
  | _ -> fail st "expected a name");
  let start = st.pos in
  while (match peek st with Some c when is_name_char c -> true | _ -> false) do
    advance st
  done;
  String.sub st.input start (st.pos - start)

(* keyword match at a word boundary *)
let eat_kw st kw =
  skip_ws st;
  let n = String.length kw in
  if
    starts_with st kw
    && (st.pos + n >= String.length st.input || not (is_name_char st.input.[st.pos + n]))
  then begin
    st.pos <- st.pos + n;
    true
  end
  else false

let read_string_lit st =
  let quote =
    match peek st with
    | Some (('"' | '\'') as q) ->
      advance st;
      q
    | _ -> fail st "expected a string literal"
  in
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string literal"
    | Some c when c = quote ->
      advance st;
      (* doubled quote escapes itself *)
      if peek st = Some quote then begin
        Buffer.add_char buf quote;
        advance st;
        go ()
      end
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents buf

let read_number st =
  let start = st.pos in
  let seen_dot = ref false in
  while
    match peek st with
    | Some '0' .. '9' -> true
    | Some '.' when not !seen_dot && (match peek2 st with Some '0' .. '9' -> true | _ -> false)
      ->
      seen_dot := true;
      true
    | _ -> false
  do
    advance st
  done;
  let s = String.sub st.input start (st.pos - start) in
  if s = "" then fail st "expected a number";
  if !seen_dot then Value.Float (float_of_string s) else Value.Int (int_of_string s)

(* keyword lookahead without consuming *)
let next_kw st kw =
  skip_ws st;
  let n = String.length kw in
  starts_with st kw
  && (st.pos + n >= String.length st.input || not (is_name_char st.input.[st.pos + n]))

(* --- expression grammar --- *)

(* FLWOR and quantified expressions bind loosest and may appear in any
   expression position, so every entry point dispatches on their keywords. *)
let rec parse_expr st : Ast.expr =
  skip_ws st;
  if next_kw st "for" || next_kw st "let" then parse_flwor st
  else if next_kw st "some" then begin
    ignore (eat_kw st "some");
    parse_quantified st ~universal:false
  end
  else if next_kw st "every" then begin
    ignore (eat_kw st "every");
    parse_quantified st ~universal:true
  end
  else parse_or st

and parse_or st =
  let left = parse_and st in
  if eat_kw st "or" then Ast.Or (left, parse_or st) else left

and parse_and st =
  let left = parse_cmp st in
  if eat_kw st "and" then Ast.And (left, parse_and st) else left

and parse_cmp st =
  let left = parse_add st in
  skip_ws st;
  let op =
    if eat st "!=" then Some Ast.Neq
    else if eat st "<=" then Some Ast.Le
    else if eat st ">=" then Some Ast.Ge
    else if eat st "=" then Some Ast.Eq
    else if starts_with st "</" then None
    else if eat st "<" then Some Ast.Lt
    else if eat st ">" then Some Ast.Gt
    else None
  in
  match op with Some op -> Ast.Cmp (op, left, parse_add st) | None -> left

and parse_add st =
  let left = parse_mul st in
  let rec go acc =
    skip_ws st;
    if eat st "+" then go (Ast.Arith (Ast.Add, acc, parse_mul st))
    else if starts_with st "->" then acc
    else if eat st "-" then go (Ast.Arith (Ast.Sub, acc, parse_mul st))
    else acc
  in
  go left

and parse_mul st =
  let left = parse_unary st in
  let rec go acc =
    skip_ws st;
    if eat st "*" then go (Ast.Arith (Ast.Mul, acc, parse_unary st))
    else if eat_kw st "div" then go (Ast.Arith (Ast.Div, acc, parse_unary st))
    else if eat_kw st "mod" then go (Ast.Arith (Ast.Mod, acc, parse_unary st))
    else acc
  in
  go left

and parse_unary st =
  skip_ws st;
  if eat st "-" then Ast.Arith (Ast.Sub, Ast.Lit (Value.Int 0), parse_unary st)
  else parse_postfix st

and parse_postfix st =
  let prim = parse_primary st in
  skip_ws st;
  if starts_with st "/" then begin
    let root =
      match prim with
      | Ast.Path p when p.Ast.steps = [] -> p.Ast.root
      | Ast.Path _ -> fail st "unexpected steps"
      | _ -> fail st "path steps may only follow a variable or view(...)"
    in
    Ast.Path { root; steps = parse_steps st }
  end
  else prim

and parse_steps st =
  let steps = ref [] in
  let rec go () =
    skip_ws st;
    let axis =
      if eat st "//" then Some Ast.Descendant
      else if starts_with st "/" && not (starts_with st "/>") then begin
        ignore (eat st "/");
        Some Ast.Child
      end
      else None
    in
    match axis with
    | None -> ()
    | Some axis ->
      skip_ws st;
      let axis, name =
        match peek st with
        | Some '@' ->
          advance st;
          (Ast.Attribute, read_name st)
        | Some '*' ->
          advance st;
          (axis, "*")
        | Some '.' ->
          advance st;
          (Ast.Self, ".")
        | _ -> (axis, read_name st)
      in
      let predicate =
        skip_ws st;
        if eat st "[" then begin
          let p = parse_expr st in
          skip_ws st;
          expect st "]";
          Some p
        end
        else None
      in
      steps := { Ast.axis; name; predicate } :: !steps;
      go ()
  in
  go ();
  List.rev !steps

and parse_primary st : Ast.expr =
  skip_ws st;
  match peek st with
  | Some '(' ->
    advance st;
    let e = parse_expr st in
    skip_ws st;
    expect st ")";
    e
  | Some ('"' | '\'') -> Ast.Lit (Value.String (read_string_lit st))
  | Some '0' .. '9' -> Ast.Lit (read_number st)
  | Some '$' ->
    advance st;
    let v = read_name st in
    Ast.Path { root = Ast.R_var v; steps = [] }
  | Some '.' when peek2 st <> Some '.' ->
    advance st;
    Ast.Path { root = Ast.R_var "."; steps = [] }
  | Some '<' -> parse_element st
  | Some '@' ->
    advance st;
    let name = read_name st in
    Ast.Path
      { root = Ast.R_var ".";
        steps = [ { Ast.axis = Ast.Attribute; name; predicate = None } ];
      }
  | Some c when is_name_start c -> parse_word st
  | _ -> fail st "expected an expression"

and parse_word st =
  begin
    let name = read_name st in
    match name with
    | "view" ->
      skip_ws st;
      expect st "(";
      skip_ws st;
      let v = read_string_lit st in
      skip_ws st;
      expect st ")";
      Ast.Path { root = Ast.R_view v; steps = [] }
    | "not" ->
      skip_ws st;
      expect st "(";
      let e = parse_expr st in
      skip_ws st;
      expect st ")";
      Ast.Not e
    | "count" | "sum" | "min" | "max" | "avg" | "distinct" | "exists" ->
      skip_ws st;
      expect st "(";
      let args = parse_args st in
      Ast.Call (name, args)
    | "OLD_NODE" | "NEW_NODE" -> Ast.Path { root = Ast.R_var name; steps = [] }
    | _ ->
      (* a bare name is a child step relative to the context item *)
      Ast.Path
        { root = Ast.R_var ".";
          steps = [ { Ast.axis = Ast.Child; name; predicate = None } ];
        }
  end

and parse_args st =
  skip_ws st;
  if eat st ")" then []
  else begin
    let rec go acc =
      let e = parse_expr st in
      skip_ws st;
      if eat st "," then go (e :: acc)
      else begin
        expect st ")";
        List.rev (e :: acc)
      end
    in
    go []
  end

and parse_flwor st : Ast.expr =
  let clauses = ref [] in
  let rec read_clauses () =
    skip_ws st;
    if eat_kw st "for" then begin
      let rec vars () =
        skip_ws st;
        expect st "$";
        let v = read_name st in
        if not (eat_kw st "in") then fail st "expected 'in'";
        let e = parse_expr st in
        clauses := Ast.For (v, e) :: !clauses;
        skip_ws st;
        if eat st "," then vars ()
      in
      vars ();
      read_clauses ()
    end
    else if eat_kw st "let" then begin
      let rec vars () =
        skip_ws st;
        expect st "$";
        let v = read_name st in
        skip_ws st;
        expect st ":=";
        let e = parse_expr st in
        clauses := Ast.Let (v, e) :: !clauses;
        skip_ws st;
        if eat st "," then vars ()
      in
      vars ();
      read_clauses ()
    end
  in
  read_clauses ();
  if !clauses = [] then fail st "expected for/let";
  let where = if eat_kw st "where" then Some (parse_expr st) else None in
  if not (eat_kw st "return") then fail st "expected 'return'";
  let return = parse_expr st in
  Ast.Flwor { clauses = List.rev !clauses; where; return }

and parse_quantified st ~universal =
  skip_ws st;
  expect st "$";
  let var = read_name st in
  if not (eat_kw st "in") then fail st "expected 'in'";
  let source = parse_expr st in
  if not (eat_kw st "satisfies") then fail st "expected 'satisfies'";
  let satisfies = parse_expr st in
  Ast.Quantified { universal; var; source; satisfies }

and parse_element st : Ast.expr =
  expect st "<";
  let tag = read_name st in
  (* attributes *)
  let attrs = ref [] in
  let rec read_attrs () =
    skip_ws st;
    match peek st with
    | Some ('>' | '/') -> ()
    | Some c when is_name_start c ->
      let name = read_name st in
      skip_ws st;
      expect st "=";
      skip_ws st;
      let quote =
        match peek st with
        | Some (('"' | '\'') as q) ->
          advance st;
          q
        | _ -> fail st "expected a quoted attribute value"
      in
      (* value: either a single {expr} or literal text *)
      skip_ws st;
      let value =
        if eat st "{" then begin
          let e = parse_expr st in
          skip_ws st;
          expect st "}";
          e
        end
        else begin
          let buf = Buffer.create 8 in
          while (match peek st with Some c when c <> quote -> true | _ -> false) do
            Buffer.add_char buf (Option.get (peek st));
            advance st
          done;
          Ast.Lit (Value.String (Buffer.contents buf))
        end
      in
      skip_ws st;
      (match peek st with
      | Some c when c = quote -> advance st
      | _ -> fail st "unterminated attribute value");
      attrs := (name, value) :: !attrs;
      read_attrs ()
    | _ -> fail st "malformed start tag"
  in
  read_attrs ();
  skip_ws st;
  if eat st "/>" then Ast.Elem { tag; attrs = List.rev !attrs; content = [] }
  else begin
    expect st ">";
    let content = ref [] in
    let rec read_content () =
      if starts_with st "</" then begin
        ignore (eat st "</");
        let close = read_name st in
        if close <> tag then fail st "mismatched closing tag </%s> for <%s>" close tag;
        skip_ws st;
        expect st ">"
      end
      else
        match peek st with
        | None -> fail st "unterminated element <%s>" tag
        | Some '<' ->
          content := Ast.C_elem (parse_element st) :: !content;
          read_content ()
        | Some '{' ->
          advance st;
          let e = parse_expr st in
          skip_ws st;
          expect st "}";
          content := Ast.C_enclosed e :: !content;
          read_content ()
        | Some _ ->
          let buf = Buffer.create 16 in
          while
            match peek st with
            | Some ('<' | '{') | None -> false
            | Some c ->
              Buffer.add_char buf c;
              advance st;
              ignore c;
              true
          do
            ()
          done;
          let text = Buffer.contents buf in
          if String.trim text <> "" then content := Ast.C_text text :: !content;
          read_content ()
    in
    read_content ();
    Ast.Elem { tag; attrs = List.rev !attrs; content = List.rev !content }
  end

let parse_expr input =
  let st = { input; pos = 0 } in
  let e = parse_expr st in
  skip_ws st;
  if st.pos <> String.length input then fail st "trailing input";
  e

let parse_path input =
  match parse_expr input with
  | Ast.Path ({ root = Ast.R_view _; _ } as p) -> p
  | _ -> raise (Parse_error "a trigger path must be rooted at view(\"…\")")
