module Op = Xqgm.Op
module Expr = Xqgm.Expr
module Keys = Xqgm.Keys
module Eval = Xqgm.Eval
module Value = Relkit.Value
module Ra = Relkit.Ra

exception Unsupported of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Unsupported msg)) fmt

type view_tree = {
  elem_tag : string;
  op : Op.t;
  node_col : string;
  key : string list;
  fields : (string * string) list;
  corr : string list;
  children : view_tree list;
}

type view = {
  view_name : string;
  definition : Ast.expr;
  tree : view_tree;
}

(* --- environment --- *)

type binding =
  | Atom of string  (* scalar column *)
  | Row of {
      table : string;
      cols : (string * string) list;  (* field -> column *)
    }
  | Seq of seq_def
  | Alias of Ast.expr  (* scalar let *)

and seq_def = {
  sd_table : string;
  sd_pred : Ast.expr option;
}



let fresh_prefix =
  let n = ref 0 in
  fun base ->
    incr n;
    Printf.sprintf "%s%d$" base !n

let cmp_op : Ast.cmp -> Ra.binop = function
  | Ast.Eq -> Ra.Eq
  | Ast.Neq -> Ra.Neq
  | Ast.Lt -> Ra.Lt
  | Ast.Le -> Ra.Le
  | Ast.Gt -> Ra.Gt
  | Ast.Ge -> Ra.Ge

let arith_op : Ast.arith -> Ra.binop = function
  | Ast.Add -> Ra.Add
  | Ast.Sub -> Ra.Sub
  | Ast.Mul -> Ra.Mul
  | Ast.Div -> Ra.Div
  | Ast.Mod -> Ra.Mod

let rec conjuncts = function
  | Ast.And (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

(* --- scalar compilation --- *)

(* [aggs] rewrites whole subexpressions (aggregate calls, nested FLWORs) to
   columns introduced by demand instantiation; matching is structural. *)
let rec compile_scalar ~env ~aggs (e : Ast.expr) : Expr.t =
  match List.assoc_opt e aggs with
  | Some col -> Expr.Col col
  | None -> (
    match e with
    | Ast.Lit v -> Expr.Const v
    | Ast.Cmp (op, a, b) ->
      Expr.Binop (cmp_op op, compile_scalar ~env ~aggs a, compile_scalar ~env ~aggs b)
    | Ast.Arith (op, a, b) ->
      Expr.Binop (arith_op op, compile_scalar ~env ~aggs a, compile_scalar ~env ~aggs b)
    | Ast.And (a, b) ->
      Expr.Binop (Ra.And, compile_scalar ~env ~aggs a, compile_scalar ~env ~aggs b)
    | Ast.Or (a, b) ->
      Expr.Binop (Ra.Or, compile_scalar ~env ~aggs a, compile_scalar ~env ~aggs b)
    | Ast.Not e -> Expr.Not (compile_scalar ~env ~aggs e)
    | Ast.Path p -> scalar_of_path ~env ~aggs p
    | Ast.Call _ -> fail "aggregate %s outside a supported position" (Ast.expr_to_string e)
    | Ast.Quantified _ ->
      fail "quantified expression outside a supported position"
    | Ast.Elem _ | Ast.Flwor _ ->
      fail "%s is not a scalar expression" (Ast.expr_to_string e))

and scalar_of_path ~env ~aggs (p : Ast.path) : Expr.t =
  match p.Ast.root with
  | Ast.R_view _ -> fail "unbound view path %s in a scalar position" (Ast.path_to_string p)
  | Ast.R_var v -> (
    match List.assoc_opt v env with
    | None -> fail "unbound variable $%s" v
    | Some (Atom col) -> (
      match p.Ast.steps with
      | [] -> Expr.Col col
      | _ -> fail "steps after the scalar variable $%s" v)
    | Some (Alias e) -> (
      match p.Ast.steps with
      | [] -> compile_scalar ~env ~aggs e
      | _ -> fail "steps after the scalar let $%s" v)
    | Some (Row { cols; _ }) -> (
      match p.Ast.steps with
      | [ { Ast.axis = Ast.Child | Ast.Self; name; predicate = None } ] -> (
        match List.assoc_opt name cols with
        | Some col -> Expr.Col col
        | None -> fail "row variable $%s has no column %S" v name)
      | _ -> fail "unsupported path %s over a row variable" (Ast.path_to_string p))
    | Some (Seq _) -> fail "sequence variable $%s used as a scalar" v)

(* --- for-clause sources --- *)

type source =
  | Src_rows of string * Ast.expr option  (* table, row predicate *)
  | Src_distinct of string * string * Ast.expr option  (* table, field, pred *)
  | Src_seq of string

let classify_source ~env (e : Ast.expr) : source =
  match e with
  | Ast.Path { root = Ast.R_view _; steps } -> (
    match steps with
    | [ { Ast.name = t; predicate = None; _ }; { Ast.name = "row"; predicate = p; _ } ] ->
      Src_rows (t, p)
    | _ -> fail "unsupported view path %s (expected view(...)/table/row)" (Ast.expr_to_string e))
  | Ast.Call ("distinct", [ Ast.Path { root = Ast.R_view _; steps } ]) -> (
    match steps with
    | [ { Ast.name = t; predicate = None; _ };
        { Ast.name = "row"; predicate = p; _ };
        { Ast.name = f; predicate = None; _ };
      ] ->
      Src_distinct (t, f, p)
    | _ -> fail "unsupported distinct() source")
  | Ast.Path { root = Ast.R_var v; steps = [] } -> (
    match List.assoc_opt v env with
    | Some (Seq _) -> Src_seq v
    | _ -> fail "$%s is not a sequence variable" v)
  | _ -> fail "unsupported for-clause source %s" (Ast.expr_to_string e)

(* --- block instantiation --- *)

(* The result of instantiating a sequence variable: its rows as an operator
   plus the correlation conjuncts linking it to the outer iteration. *)
type block = {
  b_op : Op.t;
  b_cols : (string * string) list;
  b_key : string list;
  b_corr : (string * Expr.t) list;  (* (block column, outer scalar) *)
}

let rec instantiate ~schema_of ~env (sd : seq_def) : block =
  let schema = schema_of sd.sd_table in
  let prefix = fresh_prefix sd.sd_table in
  let cols = List.map (fun c -> (c, prefix ^ c)) (Relkit.Schema.column_names schema) in
  let op = Op.table sd.sd_table cols in
  let block = { b_op = op; b_cols = cols; b_key = Keys.canonical_key ~schema_of op; b_corr = [] } in
  match sd.sd_pred with
  | None -> block
  | Some pred ->
    List.fold_left (fun b conj -> apply_block_conjunct ~schema_of ~env b conj) block
      (conjuncts pred)

and apply_block_conjunct ~schema_of ~env block conj =
  let self_field = function
    | Ast.Path { root = Ast.R_var "."; steps = [ { Ast.name; predicate = None; _ } ] } ->
      Some name
    | _ -> None
  in
  let block_col f =
    match List.assoc_opt f block.b_cols with
    | Some c -> c
    | None -> fail "no column %S in the sequence rows" f
  in
  let as_outer_scalar e =
    match compile_scalar ~env ~aggs:[] e with
    | expr -> Some expr
    | exception Unsupported _ -> None
  in
  match conj with
  | Ast.Cmp (op, a, b) -> (
    let field, other, op =
      match self_field a, self_field b with
      | Some f, _ -> (f, b, op)
      | None, Some f ->
        (* flip the comparison *)
        let flipped =
          match op with
          | Ast.Lt -> Ast.Gt
          | Ast.Le -> Ast.Ge
          | Ast.Gt -> Ast.Lt
          | Ast.Ge -> Ast.Le
          | (Ast.Eq | Ast.Neq) as o -> o
        in
        (f, a, flipped)
      | None, None -> fail "predicate %s does not reference the row" (Ast.expr_to_string conj)
    in
    let col = block_col field in
    match other with
    | Ast.Lit v ->
      { block with
        b_op = Op.select ~pred:(Expr.Binop (cmp_op op, Expr.Col col, Expr.Const v)) block.b_op;
      }
    | Ast.Path { root = Ast.R_var u; steps = [ { Ast.name = g; predicate = None; _ } ] }
      when match List.assoc_opt u env with Some (Seq _) -> true | _ -> false -> (
      (* chained sequence: join the other block in (existential semantics over
         its key) *)
      if op <> Ast.Eq then fail "only equality chains between sequences are supported";
      match List.assoc_opt u env with
      | Some (Seq sd_u) ->
        let ub = instantiate ~schema_of ~env sd_u in
        let joined =
          Op.join
            ~pred:(Expr.eq (Expr.Col col) (Expr.Col (List.assoc g ub.b_cols)))
            block.b_op ub.b_op
        in
        { block with
          b_op = joined;
          b_key = block.b_key @ ub.b_key;
          b_corr = block.b_corr @ ub.b_corr;
        }
      | _ -> assert false)
    | other -> (
      match as_outer_scalar other with
      | Some outer ->
        if op <> Ast.Eq then
          fail "correlated predicate %s must be an equality" (Ast.expr_to_string conj);
        { block with b_corr = (col, outer) :: block.b_corr }
      | None -> fail "unsupported predicate %s" (Ast.expr_to_string conj)))
  | _ -> fail "unsupported predicate %s" (Ast.expr_to_string conj)

(* --- demand analysis --- *)

type demand = {
  dvar : string;
  mutable want_count : bool;
  mutable scalar_aggs : (Ast.expr * string * string) list;
      (* (original call, fn, field) *)
  mutable frag : Ast.expr option;  (* nested FLWOR *)
}

let rec collect_demands ~env demands (e : Ast.expr) =
  let demand_for v =
    match List.find_opt (fun d -> d.dvar = v) !demands with
    | Some d -> d
    | None ->
      let d = { dvar = v; want_count = false; scalar_aggs = []; frag = None } in
      demands := !demands @ [ d ];
      d
  in
  let is_seq v = match List.assoc_opt v env with Some (Seq _) -> true | _ -> false in
  match e with
  | Ast.Call (("count" | "exists"), [ Ast.Path { root = Ast.R_var v; steps = [] } ])
    when is_seq v ->
    (demand_for v).want_count <- true
  | Ast.Call
      ( (("sum" | "min" | "max" | "avg") as fn),
        [ Ast.Path { root = Ast.R_var v; steps = [ { Ast.name = f; predicate = None; _ } ] } ]
      )
    when is_seq v ->
    let d = demand_for v in
    d.scalar_aggs <- d.scalar_aggs @ [ (e, fn, f) ]
  | Ast.Flwor { clauses = Ast.For (_, Ast.Path { root = Ast.R_var v; steps = [] }) :: _; _ }
    when is_seq v ->
    let d = demand_for v in
    (match d.frag with
    | Some other when other != e -> fail "variable $%s is iterated more than once" v
    | _ -> d.frag <- Some e)
  | Ast.Lit _ | Ast.Path _ -> ()
  | Ast.Cmp (_, a, b) | Ast.Arith (_, a, b) | Ast.And (a, b) | Ast.Or (a, b) ->
    collect_demands ~env demands a;
    collect_demands ~env demands b
  | Ast.Not e -> collect_demands ~env demands e
  | Ast.Call (_, args) -> List.iter (collect_demands ~env demands) args
  | Ast.Quantified { source = Ast.Path { root = Ast.R_var _; steps = [] }; _ } ->
    (* handled separately by the where compiler *)
    ()
  | Ast.Quantified _ -> fail "quantifier source must be a sequence variable"
  | Ast.Elem { attrs; content; _ } ->
    List.iter (fun (_, e) -> collect_demands ~env demands e) attrs;
    List.iter
      (function
        | Ast.C_text _ -> ()
        | Ast.C_elem e | Ast.C_enclosed e -> collect_demands ~env demands e)
      content
  | Ast.Flwor _ -> fail "nested FLWOR must iterate a bound sequence variable"

(* Is a count-comparison conjunct satisfied only with at least one row?  Then
   the grouped subquery can be inner-joined. *)
let positive_count_conjunct = function
  | Ast.Cmp (op, Ast.Call ("count", _), Ast.Lit (Value.Int k)) -> (
    match op with
    | Ast.Ge -> k >= 1
    | Ast.Gt -> k >= 0
    | Ast.Eq -> k >= 1
    | Ast.Neq | Ast.Lt | Ast.Le -> false)
  | Ast.Cmp (op, Ast.Lit (Value.Int k), Ast.Call ("count", _)) -> (
    match op with
    | Ast.Le -> k >= 1
    | Ast.Lt -> k >= 0
    | Ast.Eq -> k >= 1
    | Ast.Neq | Ast.Gt | Ast.Ge -> false)
  | Ast.Call ("exists", _) -> true
  | _ -> false

(* --- the main worker --- *)

(* Compiles a FLWOR whose return is an element constructor into a level:
   one output tuple per element. *)
(* exists(e) in conditions desugars to count(e) >= 1 (and survives not(...)
   through the left-outer-join null handling of count comparisons) *)
let rec desugar_exists (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.Call ("exists", [ arg ]) ->
    Ast.Cmp (Ast.Ge, Ast.Call ("count", [ arg ]), Ast.Lit (Relkit.Value.Int 1))
  | Ast.And (a, b) -> Ast.And (desugar_exists a, desugar_exists b)
  | Ast.Or (a, b) -> Ast.Or (desugar_exists a, desugar_exists b)
  | Ast.Not a -> Ast.Not (desugar_exists a)
  | Ast.Cmp (op, a, b) -> Ast.Cmp (op, desugar_exists a, desugar_exists b)
  | e -> e

let rec compile_level ?(keep = []) ~schema_of ~env ~cur (flwor : Ast.expr) : view_tree =
  match flwor with
  | Ast.Flwor { clauses; where; return } ->
    let where = Option.map desugar_exists where in
    (* 1. iteration space *)
    let env, cur =
      List.fold_left
        (fun (env, cur) clause -> apply_clause ~schema_of (env, cur) clause)
        (env, cur) clauses
    in
    let cur =
      match cur with
      | Some c -> c
      | None -> fail "FLWOR without a for clause"
    in
    (* 2. demands from where and return *)
    let demands = ref [] in
    Option.iter (collect_demands ~env demands) where;
    collect_demands ~env demands return;
    (* 3. instantiate each demanded sequence variable *)
    let inner_ok =
      match where with
      | None -> fun _ -> false
      | Some w ->
        fun v ->
          List.exists
            (fun conj ->
              positive_count_conjunct conj
              &&
              let mentions = ref false in
              let rec scan = function
                | Ast.Path { root = Ast.R_var u; _ } -> if u = v then mentions := true
                | Ast.Call (_, args) -> List.iter scan args
                | Ast.Cmp (_, a, b) | Ast.Arith (_, a, b) | Ast.And (a, b) | Ast.Or (a, b) ->
                  scan a;
                  scan b
                | Ast.Not e -> scan e
                | _ -> ()
              in
              scan conj;
              !mentions)
            (conjuncts w)
    in
    let aggs = ref [] in
    let outer_counts = ref [] in
    let children = ref [] in
    let count_fields = ref [] in
    let cur = ref cur in
    List.iter
      (fun d ->
        let sd =
          match List.assoc_opt d.dvar env with
          | Some (Seq sd) -> sd
          | _ -> assert false
        in
        let block = instantiate ~schema_of ~env sd in
        (* extend the block with the nested FLWOR's body, if iterated *)
        let block_op, item =
          match d.frag with
          | None -> (block.b_op, None)
          | Some (Ast.Flwor { clauses = Ast.For (w, _) :: rest; where = bw; return = br } as f)
            ->
            let benv = (w, Row { table = sd.sd_table; cols = block.b_cols }) :: env in
            let keep_corr = List.map fst block.b_corr in
            if rest = [] && bw = None then begin
              (* plain iteration: compile the item in place, sharing this
                 block (and its aggregates) — the Figure 5 shape *)
              let tree = compile_item ~keep:keep_corr ~schema_of ~env:benv ~cur:block.b_op br in
              let tree = { tree with corr = keep_corr } in
              children := !children @ [ tree ];
              aggs := (f, ("frag", tree)) :: !aggs;
              (tree.op, Some tree)
            end
            else begin
              (* a filtered / deeper nested loop: its own subtree over the
                 extended block *)
              let tree =
                compile_level ~keep:keep_corr ~schema_of ~env:benv ~cur:(Some block.b_op)
                  (Ast.Flwor { clauses = rest; where = bw; return = br })
              in
              let tree = { tree with corr = keep_corr } in
              children := !children @ [ tree ];
              aggs := (f, ("frag", tree)) :: !aggs;
              (tree.op, Some tree)
            end
          | Some _ -> assert false
        in
        (* grouped aggregates over the (possibly extended) block *)
        let corr_cols = List.map fst block.b_corr in
        let group_aggs = ref [] in
        let cnt_col = fresh_prefix "cnt" in
        if d.want_count || (item <> None && not (inner_ok d.dvar)) then
          group_aggs := (cnt_col, Expr.Count) :: !group_aggs;
        List.iter
          (fun (call, fn, f) ->
            let col = fresh_prefix fn in
            let field_col =
              match List.assoc_opt f block.b_cols with
              | Some c -> c
              | None -> fail "aggregated field %S not found" f
            in
            let agg =
              match fn with
              | "sum" -> Expr.Sum (Expr.Col field_col)
              | "min" -> Expr.Min (Expr.Col field_col)
              | "max" -> Expr.Max (Expr.Col field_col)
              | "avg" -> Expr.Avg (Expr.Col field_col)
              | _ -> assert false
            in
            group_aggs := (col, agg) :: !group_aggs;
            aggs := (call, ("scalar", dummy_tree col)) :: !aggs)
          d.scalar_aggs;
        let frag_col = fresh_prefix "seq" in
        (match item with
        | Some tree ->
          group_aggs := (frag_col, Expr.Xml_frag (Expr.Col tree.node_col)) :: !group_aggs
        | None -> ());
        let order = match item with Some tree -> tree.key | None -> [] in
        let grouped = Op.group_by ~keys:corr_cols ~aggs:(List.rev !group_aggs) ~order block_op in
        let join_pred =
          Expr.and_ (List.map (fun (bc, outer) -> Expr.eq (Expr.Col bc) outer) block.b_corr)
        in
        let kind = if inner_ok d.dvar then Op.Inner else Op.Left_outer in
        cur := Op.join ~kind ~pred:join_pred !cur grouped;
        let have_cnt = d.want_count || (item <> None && not (inner_ok d.dvar)) in
        if d.want_count then begin
          let count_ast =
            Ast.Call ("count", [ Ast.Path { root = Ast.R_var d.dvar; steps = [] } ])
          in
          aggs := (count_ast, ("count", dummy_tree cnt_col)) :: !aggs;
          outer_counts := (cnt_col, kind = Op.Left_outer) :: !outer_counts
        end;
        (* expose count(childtag) provenance whenever the count column exists,
           so trigger conditions like count(NEW_NODE/child) compile to it *)
        (if have_cnt then
           match item with
           | Some tree -> count_fields := (tree.elem_tag, cnt_col) :: !count_fields
           | None -> ());
        (* remember the fragment column for the return compiler *)
        match item with
        | Some tree ->
          aggs :=
            List.map
              (fun (k, (tag, t)) ->
                if tag = "frag" && t == tree then (k, ("fragcol", dummy_tree frag_col))
                else (k, (tag, t)))
              !aggs
        | None -> ())
      !demands;
    let agg_cols =
      List.filter_map
        (fun (k, (tag, t)) ->
          match tag with
          | "count" | "scalar" | "fragcol" -> Some (k, t.node_col)
          | _ -> None)
        !aggs
    in
    (* 4. where *)
    let cur =
      match where with
      | None -> !cur
      | Some w ->
        List.fold_left
          (fun c conj -> compile_where_conjunct ~schema_of ~env ~aggs:agg_cols ~outer_counts:!outer_counts c conj)
          !cur (conjuncts w)
    in
    (* 5. return *)
    (match return with
    | Ast.Elem _ ->
      compile_return ~keep ~schema_of ~env ~aggs:agg_cols ~children:!children
        ~count_fields:!count_fields ~cur return
    | _ -> fail "return must be an element constructor")
  | _ -> fail "expected a FLWOR expression"

(* a placeholder view_tree used to thread plain columns through the aggs map *)
and dummy_tree col =
  { elem_tag = "";
    op = Op.table "!" [];
    node_col = col;
    key = [];
    fields = [];
    corr = [];
    children = [];
  }

and apply_clause ~schema_of (env, cur) = function
  | Ast.Let (v, e) -> (
    match e with
    | Ast.Path { root = Ast.R_view _; _ } | Ast.Call ("distinct", _) -> (
      match classify_source ~env e with
      | Src_rows (t, p) -> ((v, Seq { sd_table = t; sd_pred = p }) :: env, cur)
      | Src_distinct _ -> fail "let over distinct() is not supported"
      | Src_seq _ -> assert false)
    | scalar -> ((v, Alias scalar) :: env, cur))
  | Ast.For (v, e) -> (
    match classify_source ~env e with
    | Src_rows (t, pred) ->
      let schema = schema_of t in
      let prefix = fresh_prefix v in
      let cols = List.map (fun c -> (c, prefix ^ c)) (Relkit.Schema.column_names schema) in
      let t_op = Op.table t cols in
      let env = (v, Row { table = t; cols }) :: env in
      let joined =
        match cur with
        | None -> t_op
        | Some c -> Op.join ~pred:(Expr.Const (Value.Bool true)) c t_op
      in
      let joined =
        match pred with
        | None -> joined
        | Some p ->
          let penv = ("." , Row { table = t; cols }) :: env in
          let pred_expr =
            Expr.and_ (List.map (compile_scalar ~env:penv ~aggs:[]) (conjuncts p))
          in
          Op.select ~pred:pred_expr joined
      in
      (env, Some joined)
    | Src_distinct (t, f, pred) ->
      let schema = schema_of t in
      let prefix = fresh_prefix v in
      let cols = List.map (fun c -> (c, prefix ^ c)) (Relkit.Schema.column_names schema) in
      let t_op = Op.table t cols in
      let t_op =
        match pred with
        | None -> t_op
        | Some p ->
          let penv = [ (".", Row { table = t; cols }) ] in
          Op.select ~pred:(compile_scalar ~env:penv ~aggs:[] p) t_op
      in
      let vcol = prefix ^ f in
      ignore (List.assoc f cols);
      let distinct = Op.group_by ~keys:[ vcol ] ~aggs:[] t_op in
      let env = (v, Atom vcol) :: env in
      let joined =
        match cur with
        | None -> distinct
        | Some c -> Op.join ~pred:(Expr.Const (Value.Bool true)) c distinct
      in
      (env, Some joined)
    | Src_seq sv -> (
      match List.assoc_opt sv env with
      | Some (Seq sd) ->
        let block = instantiate ~schema_of ~env sd in
        let env = (v, Row { table = sd.sd_table; cols = block.b_cols }) :: env in
        let pred =
          Expr.and_ (List.map (fun (bc, outer) -> Expr.eq (Expr.Col bc) outer) block.b_corr)
        in
        let joined =
          match cur with
          | None ->
            if block.b_corr <> [] then fail "correlated sequence iterated at the top level";
            block.b_op
          | Some c -> Op.join ~pred c block.b_op
        in
        (env, Some joined)
      | _ -> assert false))

and compile_where_conjunct ~schema_of ~env ~aggs ~outer_counts cur conj =
  ignore schema_of;
  match conj with
  | Ast.Quantified { universal; var; source = Ast.Path { root = Ast.R_var v; steps = [] }; satisfies }
    -> (
    match List.assoc_opt v env with
    | Some (Seq sd) ->
      (* some: inner-join groups with >= 1 satisfying row;
         every: left-outer join groups of *violating* rows, keep NULLs *)
      let block = instantiate ~schema_of ~env sd in
      let benv = (var, Row { table = sd.sd_table; cols = block.b_cols }) :: env in
      let local =
        let p = if universal then Ast.Not satisfies else satisfies in
        compile_scalar ~env:benv ~aggs:[] p
      in
      let filtered = Op.select ~pred:local block.b_op in
      let corr_cols = List.map fst block.b_corr in
      let cnt = fresh_prefix "qcnt" in
      let grouped = Op.group_by ~keys:corr_cols ~aggs:[ (cnt, Expr.Count) ] filtered in
      let pred =
        Expr.and_ (List.map (fun (bc, outer) -> Expr.eq (Expr.Col bc) outer) block.b_corr)
      in
      if universal then
        Op.select
          ~pred:(Expr.Is_null (Expr.Col cnt))
          (Op.join ~kind:Op.Left_outer ~pred cur grouped)
      else Op.join ~kind:Op.Inner ~pred cur grouped
    | _ -> fail "quantifier source must be a sequence variable")
  | conj ->
    let expr = compile_scalar ~env ~aggs conj in
    (* counts joined through a left outer join may be NULL, meaning zero *)
    let expr =
      List.fold_left
        (fun e (cnt_col, outer) ->
          if not outer then e
          else
            Expr.Binop
              ( Ra.Or,
                Expr.Binop (Ra.And, Expr.Not (Expr.Is_null (Expr.Col cnt_col)), e),
                Expr.Binop
                  ( Ra.And,
                    Expr.Is_null (Expr.Col cnt_col),
                    Expr.map_cols (fun c -> c) e
                    |> subst_col cnt_col (Expr.Const (Value.Int 0)) ) )
        )
        expr outer_counts
    in
    Op.select ~pred:expr cur

and subst_col col replacement expr =
  let rec go = function
    | Expr.Col c when c = col -> replacement
    | Expr.Col c -> Expr.Col c
    | Expr.Const v -> Expr.Const v
    | Expr.Binop (op, a, b) -> Expr.Binop (op, go a, go b)
    | Expr.Not e -> Expr.Not (go e)
    | Expr.Is_null e -> Expr.Is_null (go e)
    | Expr.Elem { tag; attrs; content } ->
      Expr.Elem
        { tag;
          attrs = List.map (fun (k, e) -> (k, go e)) attrs;
          content = List.map go content;
        }
    | Expr.Node_eq (a, b) -> Expr.Node_eq (go a, go b)
  in
  go expr

(* Compile an item constructor for a block row (the body of a nested FLWOR
   with no further clauses). *)
and compile_item ?(keep = []) ~schema_of ~env ~cur (e : Ast.expr) : view_tree =
  match e with
  | Ast.Elem _ ->
    compile_return ~keep ~schema_of ~env ~aggs:[] ~children:[] ~count_fields:[] ~cur e
  | Ast.Flwor _ -> compile_level ~keep ~schema_of ~env ~cur:(Some cur) e
  | _ -> fail "unsupported nested return %s" (Ast.expr_to_string e)

and compile_return ?(keep = []) ~schema_of ~env ~aggs ~children ~count_fields ~cur
    (e : Ast.expr) : view_tree =
  match e with
  | Ast.Elem { tag; attrs; content } ->
    let fields = ref [] in
    let attr_exprs =
      List.map
        (fun (k, ae) ->
          let compiled = compile_scalar ~env ~aggs ae in
          (match compiled with
          | Expr.Col c -> fields := ("@" ^ k, c) :: !fields
          | _ -> ());
          (k, compiled))
        attrs
    in
    let rec compile_content_item (c : Ast.content) : Expr.t list =
      match c with
      | Ast.C_text t -> [ Expr.Const (Value.String t) ]
      | Ast.C_enclosed (Ast.Path { root = Ast.R_var v; steps = [ { Ast.name = "*"; _ } ] })
        -> (
        (* $w slash star: one element per column of the row variable *)
        match List.assoc_opt v env with
        | Some (Row { cols; _ }) ->
          List.map
            (fun (f, col) ->
              fields := (f, col) :: !fields;
              Expr.Elem { tag = f; attrs = []; content = [ Expr.Col col ] })
            cols
        | _ -> fail "$%s/* requires a row variable" v)
      | Ast.C_enclosed e -> [ compile_scalar ~env ~aggs e ]
      | Ast.C_elem (Ast.Elem { tag = t2; attrs = a2; content = c2 }) ->
        let inner_attrs = List.map (fun (k, ae) -> (k, compile_scalar ~env ~aggs ae)) a2 in
        let inner_content = List.concat_map compile_content_item c2 in
        (* simple-field provenance: <t>{$x/f}</t> *)
        (match c2 with
        | [ Ast.C_enclosed pe ] -> (
          match compile_scalar ~env ~aggs pe with
          | Expr.Col col -> fields := (t2, col) :: !fields
          | _ -> ())
        | _ -> ());
        [ Expr.Elem { tag = t2; attrs = inner_attrs; content = inner_content } ]
      | Ast.C_elem _ -> fail "unexpected content"
    in
    let content_exprs = List.concat_map compile_content_item content in
    let key = Keys.canonical_key ~schema_of cur in
    (* the affected-key graphs follow *unminimized* keys through projections *)
    let full = Keys.full_key ~schema_of cur in
    let node_col = fresh_prefix (tag ^ "_elem") in
    let elem = Expr.Elem { tag; attrs = attr_exprs; content = content_exprs } in
    (* keys pass through; provenance columns are exposed for composition *)
    let extra =
      List.sort_uniq compare
        (List.map snd !fields @ List.map snd count_fields @ keep @ full)
    in
    let defs =
      List.map (fun k -> (k, Expr.Col k)) key
      @ List.filter_map
          (fun c -> if List.mem c key then None else Some (c, Expr.Col c))
          extra
      @ [ (node_col, elem) ]
    in
    let op = Op.project ~defs cur in
    { elem_tag = tag;
      op;
      node_col;
      key;
      fields =
        List.rev !fields
        @ List.map (fun (tag, col) -> ("count(" ^ tag ^ ")", col)) count_fields;
      corr = [];
      children;
    }
  | _ -> fail "return must be an element constructor"

(* --- the document element --- *)

let compile_view ~schema_of ~name (definition : Ast.expr) : view =
  match definition with
  | Ast.Elem { tag; attrs; content } ->
    if attrs <> [] then fail "attributes on the document element are not supported";
    let frags = ref [] in
    let children = ref [] in
    let content_exprs =
      List.concat_map
        (fun (c : Ast.content) ->
          match c with
          | Ast.C_text t -> [ Expr.Const (Value.String t) ]
          | Ast.C_enclosed (Ast.Flwor _ as f) ->
            let tree = compile_level ~schema_of ~env:[] ~cur:None f in
            let frag_col = fresh_prefix "docseq" in
            frags := (frag_col, tree) :: !frags;
            children := !children @ [ tree ];
            [ Expr.Col frag_col ]
          | Ast.C_elem (Ast.Elem _) -> fail "static child elements are not supported"
          | _ -> fail "unsupported document content")
        content
    in
    (match !frags with
    | [] -> fail "the document element must contain a FLWOR"
    | frags_list ->
      let grouped =
        match frags_list with
        | [ (frag_col, tree) ] ->
          Op.group_by ~keys:[]
            ~aggs:[ (frag_col, Expr.Xml_frag (Expr.Col tree.node_col)) ]
            ~order:tree.key tree.op
        | _ -> fail "multiple FLWORs under the document element are not supported"
      in
      let node_col = fresh_prefix "doc_elem" in
      let op =
        Op.project
          ~defs:[ (node_col, Expr.Elem { tag; attrs = []; content = content_exprs }) ]
          grouped
      in
      { view_name = name;
        definition;
        tree =
          { elem_tag = tag;
            op;
            node_col;
            key = [];
            fields = [];
            corr = [];
            children = !children;
          };
      })
  | _ -> fail "a view definition must be a document element constructor"

let view_of_string ~schema_of ~name text =
  compile_view ~schema_of ~name (Parser.parse_expr text)

let materialize ctx view =
  let rel = Eval.eval ctx view.tree.op in
  match rel.Eval.rows with
  | [ row ] -> (
    match row.(Eval.col_index rel view.tree.node_col) with
    | Xqgm.Xval.Node n -> n
    | v -> fail "document evaluation produced %s" (Xqgm.Xval.to_string v))
  | rows -> fail "document evaluation produced %d rows" (List.length rows)
