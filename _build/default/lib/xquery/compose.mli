(** View composition (§3.3 of the paper): composing a trigger's Path with the
    view definition yields the Path graph — the XQGM subgraph producing
    exactly the monitored nodes (Figure 5A) — and composing the trigger's
    Condition against that level yields a relational predicate when possible.

    Composition walks the {!Compile.view_tree} by element tag (child and
    descendant axes); path predicates translate to selections over the
    level's provenance columns. *)

exception Compose_error of string

(** The monitored level: its operator, node column, canonical key, and the
    provenance used to compile conditions. *)
type monitored = {
  m_op : Xqgm.Op.t;
  m_node_col : string;
  m_key : string list;
  m_tree : Compile.view_tree;
}

(** [compose_path view path] resolves e.g. [view("catalog")/product].
    @raise Compose_error when no element level matches or a predicate cannot
    be translated. *)
val compose_path : Compile.view -> Ast.path -> monitored

(** Compiles a trigger Condition into a predicate over the affected-node
    graph's columns: references through OLD_NODE map to ["old$" ^ column],
    through NEW_NODE to ["new$" ^ column].  Supported references: attributes,
    simple child elements, and [count(NODE/childtag)] when the view exposes
    that count.  Returns [None] when the condition needs the middleware
    fallback (XPath over the tagged nodes). *)
val compile_condition : monitored -> Ast.expr -> Xqgm.Expr.t option

(** A condition of the paper's §5.1 nested form
    [count(NODE/child[field cmp c1]) cmp c2]: grouping must evaluate the
    inner selection per constants-table row, which the affected-node graph
    realizes by joining a per-(node, constants) count subquery (Figure 15's
    correlated graph, decorrelated by adding the constants key to the
    grouping columns). *)
type nested_count = {
  nc_side : [ `Old | `New ];
  nc_child : Compile.view_tree;
  nc_link : string list;  (** correlation columns, same names in both levels *)
  nc_inner : Xqgm.Expr.t;  (** inner selection, over the child level's columns *)
  nc_cmp : Relkit.Ra.binop;
  nc_rhs : Xqgm.Expr.t;
}

(** Splits one nested-count conjunct off a condition; returns it together
    with the remaining conjuncts (if any).  [None] when the condition has no
    such conjunct or the pattern cannot be translated. *)
val compile_nested_count :
  monitored -> Ast.expr -> (nested_count * Ast.expr option) option

(** Middleware fallback: evaluate a condition over materialized nodes.
    Supports comparisons, boolean connectives, aggregates over paths,
    [exists], and quantified expressions. *)
val condition_fallback :
  Ast.expr -> old_node:Xmlkit.Xml.t option -> new_node:Xmlkit.Xml.t option -> bool

(** Static check that {!condition_fallback} can evaluate a condition, so
    unsupported constructs are rejected at trigger-creation time rather than
    at firing time. *)
val validate_fallback : Ast.expr -> (unit, string) result
