(** Recursive-descent parser for the XQuery subset of {!Ast} (Appendix D of
    the paper).  Element constructors are parsed in place (the lexical level
    switches inside [<tag>…</tag>]), so view definitions can be written
    exactly as in Figure 3. *)

exception Parse_error of string

(** @raise Parse_error on malformed input or unsupported syntax. *)
val parse_expr : string -> Ast.expr

(** Parses a trigger Path: a path rooted at [view("…")].
    @raise Parse_error if the input is not such a path. *)
val parse_path : string -> Ast.path

(** Character class used for keyword boundaries (shared with the trigger
    parser). *)
val is_word_char : char -> bool
