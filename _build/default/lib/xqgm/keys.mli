(** Canonical-key derivation for XQGM operators (Definition 1, Appendix A /
    Table 3 of the paper).

    The canonical key of an operator is the set of output columns whose
    values uniquely identify each output tuple.  Trigger semantics
    (Definitions 2 and 3) are phrased in terms of these keys, so a view is
    trigger-specifiable exactly when every operator has one (Definition 4 /
    Theorem 1). *)

exception Not_trigger_specifiable of string

(** [canonical_key ~schema_of op] is the key of [op]'s output, derived
    bottom-up per Table 3.  [schema_of] resolves base-table schemas (for
    primary keys).
    @raise Not_trigger_specifiable when some operator lacks a key — e.g. a
    base table without a primary key, or a projection that drops its input's
    key columns. *)
val canonical_key : schema_of:(string -> Relkit.Schema.t) -> Op.t -> string list

(** Like {!canonical_key} but without key minimization at joins: the plain
    concatenation of both sides' keys.  The front-end passes these columns
    through every projection so the affected-key graphs can always follow a
    key upward, even when the canonical key was minimized. *)
val full_key : schema_of:(string -> Relkit.Schema.t) -> Op.t -> string list

(** Checks every operator in the graph (Definition 4). *)
val trigger_specifiable :
  schema_of:(string -> Relkit.Schema.t) -> Op.t -> (unit, string) result
