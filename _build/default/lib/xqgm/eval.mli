(** Direct evaluator for XQGM graphs — the reference semantics.

    This evaluator defines what a view *means*: [R(o, D)] of the paper is
    [eval ctx o] with [ctx] describing state [D].  The production trigger
    path (pushdown + tagger) is differentially tested against it.

    Document order within [Xml_frag] sequences is ascending order of the
    GroupBy's [order] columns, matching the ORDER BY of the sorted
    outer-union plans. *)

type xrel = {
  cols : string array;
  rows : Xval.t array list;
}

(** Bindings resolve through the {!Relkit.Ra_eval.ctx}: [Post] reads current
    table contents, [Pre] the reconstructed pre-statement contents, [Delta] /
    [Nabla] the transition tables. *)
val eval : Relkit.Ra_eval.ctx -> Op.t -> xrel

val col_index : xrel -> string -> int

(** Evaluates and sorts rows by the given columns (ascending), giving the
    deterministic top-level order used when materializing views. *)
val eval_sorted : Relkit.Ra_eval.ctx -> by:string list -> Op.t -> xrel

(** Effective boolean value used by selection predicates: false for NULL and
    SQL false, true for SQL true.
    @raise Invalid_argument for non-boolean values. *)
val truthy : Xval.t -> bool

val equal_xrel : xrel -> xrel -> bool
val pp_xrel : Format.formatter -> xrel -> unit
