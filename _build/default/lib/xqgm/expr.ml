module Ra = Relkit.Ra
module Value = Relkit.Value

type binop = Ra.binop

type t =
  | Col of string
  | Const of Value.t
  | Binop of binop * t * t
  | Not of t
  | Is_null of t
  | Elem of {
      tag : string;
      attrs : (string * t) list;
      content : t list;
    }
  | Node_eq of t * t

type agg =
  | Count
  | Sum of t
  | Min of t
  | Max of t
  | Avg of t
  | Xml_frag of t

let rec cols = function
  | Col c -> [ c ]
  | Const _ -> []
  | Binop (_, a, b) -> cols a @ cols b
  | Not e | Is_null e -> cols e
  | Elem { attrs; content; _ } ->
    List.concat_map (fun (_, e) -> cols e) attrs @ List.concat_map cols content
  | Node_eq (a, b) -> cols a @ cols b

let agg_cols = function
  | Count -> []
  | Sum e | Min e | Max e | Avg e | Xml_frag e -> cols e

let rec is_scalar = function
  | Col _ | Const _ -> true
  | Binop (_, a, b) -> is_scalar a && is_scalar b
  | Not e | Is_null e -> is_scalar e
  | Elem _ -> false
  | Node_eq _ -> false

let rec map_cols f = function
  | Col c -> Col (f c)
  | Const v -> Const v
  | Binop (op, a, b) -> Binop (op, map_cols f a, map_cols f b)
  | Not e -> Not (map_cols f e)
  | Is_null e -> Is_null (map_cols f e)
  | Elem { tag; attrs; content } ->
    Elem
      { tag;
        attrs = List.map (fun (k, e) -> (k, map_cols f e)) attrs;
        content = List.map (map_cols f) content;
      }
  | Node_eq (a, b) -> Node_eq (map_cols f a, map_cols f b)

let map_agg_cols f = function
  | Count -> Count
  | Sum e -> Sum (map_cols f e)
  | Min e -> Min (map_cols f e)
  | Max e -> Max (map_cols f e)
  | Avg e -> Avg (map_cols f e)
  | Xml_frag e -> Xml_frag (map_cols f e)

let rec injectively_embedded_cols = function
  | Col c -> [ c ]
  | Const _ | Binop _ | Not _ | Is_null _ | Node_eq _ -> []
  | Elem { attrs; content; _ } ->
    List.concat_map (fun (_, e) -> injectively_embedded_cols e) attrs
    @ List.concat_map injectively_embedded_cols content

let eq a b = Binop (Ra.Eq, a, b)

let and_ = function
  | [] -> Const (Value.Bool true)
  | e :: rest -> List.fold_left (fun acc e' -> Binop (Ra.And, acc, e')) e rest

let string_of_binop = function
  | Ra.Eq -> "="
  | Ra.Neq -> "<>"
  | Ra.Lt -> "<"
  | Ra.Le -> "<="
  | Ra.Gt -> ">"
  | Ra.Ge -> ">="
  | Ra.And -> "AND"
  | Ra.Or -> "OR"
  | Ra.Add -> "+"
  | Ra.Sub -> "-"
  | Ra.Mul -> "*"
  | Ra.Div -> "/"
  | Ra.Mod -> "%"

let rec to_string = function
  | Col c -> "$" ^ c
  | Const v -> Value.to_sql_literal v
  | Binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (to_string a) (string_of_binop op) (to_string b)
  | Not e -> "NOT " ^ to_string e
  | Is_null e -> to_string e ^ " IS NULL"
  | Elem { tag; attrs; content } ->
    let attr_str =
      String.concat "" (List.map (fun (k, e) -> Printf.sprintf " %s={%s}" k (to_string e)) attrs)
    in
    Printf.sprintf "<%s%s>{%s}" tag attr_str (String.concat ", " (List.map to_string content))
  | Node_eq (a, b) -> Printf.sprintf "node-eq(%s, %s)" (to_string a) (to_string b)

let agg_to_string = function
  | Count -> "count(*)"
  | Sum e -> Printf.sprintf "sum(%s)" (to_string e)
  | Min e -> Printf.sprintf "min(%s)" (to_string e)
  | Max e -> Printf.sprintf "max(%s)" (to_string e)
  | Avg e -> Printf.sprintf "avg(%s)" (to_string e)
  | Xml_frag e -> Printf.sprintf "aggXMLFrag(%s)" (to_string e)
