(** XQGM operator graphs (Table 1 of the paper).

    Every operator produces a bag of tuples whose columns hold {!Xval.t}
    values.  Construction goes through the smart constructors below, which
    validate column references and assign unique operator ids (used for
    sharing-aware traversal and memoized evaluation).

    [Unnest] is intentionally absent: for XML views of relational data it can
    always be composed away (Theorem 1 / Appendix B of the paper), and the
    front-end never produces it. *)

type binding =
  | Post  (** current (post-statement) table contents *)
  | Pre  (** pre-statement contents — B_old *)
  | Delta  (** Δtable transition rows *)
  | Nabla  (** ∇table transition rows *)

type join_kind = Inner | Left_outer | Left_anti | Right_anti

type t = private {
  id : int;
  node : node;
}

and node =
  | Table of {
      table : string;
      binding : binding;
      cols : (string * string) list;  (** (table column, output column) *)
    }
  | Select of {
      input : t;
      pred : Expr.t;
    }
  | Project of {
      input : t;
      defs : (string * Expr.t) list;  (** (output column, expression) *)
    }
  | Join of {
      kind : join_kind;
      left : t;
      right : t;
      pred : Expr.t;
    }
  | Group_by of {
      input : t;
      keys : string list;  (** grouping columns, propagated to the output *)
      aggs : (string * Expr.agg) list;
      order : string list;
          (** input columns ordering rows within each group — determines the
              document order of [Xml_frag] sequences *)
    }
  | Union of {
      cols : string list;  (** output columns *)
      inputs : (t * string list) list;
          (** each input with, for every output column, the input column it
              maps from (the paper's M mapping, Appendix A) *)
    }

(** Output column names, in order. *)
val cols : t -> string list

(** Smart constructors.  @raise Invalid_argument on unknown column
    references, duplicate output columns, or (for joins) overlapping input
    column sets. *)

val table : ?binding:binding -> string -> (string * string) list -> t

(** [table_full schema] scans all columns with identity naming. *)
val table_full : ?binding:binding -> Relkit.Schema.t -> t

val select : pred:Expr.t -> t -> t
val project : defs:(string * Expr.t) list -> t -> t
val join : ?kind:join_kind -> pred:Expr.t -> t -> t -> t
val group_by : keys:string list -> aggs:(string * Expr.agg) list -> ?order:string list -> t -> t
val union : cols:string list -> (t * string list) list -> t

(** [to_old ~table g] is G_old: [g] with every [Post] scan of [table]
    replaced by a [Pre] scan (§4.2). *)
val to_old : table:string -> t -> t

(** All (table, binding) pairs scanned anywhere in the graph. *)
val scanned_tables : t -> (string * binding) list

(** Bottom-up fold over distinct operators (each shared operator visited
    once). *)
val fold : t -> init:'a -> f:('a -> t -> 'a) -> 'a

val binding_to_string : binding -> string
