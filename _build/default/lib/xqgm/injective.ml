module S = Set.Make (String)

type verdict =
  | Injective
  | Agg_only of string list
  | Opaque

let verdict_to_string = function
  | Injective -> "INJECTIVE"
  | Agg_only cols -> "AGG-ONLY(" ^ String.concat ", " cols ^ ")"
  | Opaque -> "OPAQUE"

(* Provenance-based implementation of Appendix F.2.

   For each operator we compute, per output column, the set of T's *base
   columns* carried injectively through that column ([carries]).  An operator
   is injectivity-preserving when the union of base columns its inputs
   carried is still carried by its outputs — this correctly treats redundant
   carriers (a column present both standalone and inside an element
   constructor may be dropped).

   GroupBy additionally collapses rows, so base columns survive a GroupBy
   only through aggXMLFrag outputs (one item per input row) or when *all* of
   T's columns are grouping keys (a keyed table has no duplicate rows).

   [violated] records a coverage failure that is still relationally
   comparable (scalar aggregates, dropped columns); [opaque] records
   T-derived data embedded non-injectively inside XML values, where only a
   full node comparison works. *)
type cls = {
  carries : (string * S.t) list;  (** output column -> T base columns *)
  xml_cols : S.t;
  violated : bool;
  opaque : bool;
}

let carried_by cls col =
  match List.assoc_opt col cls.carries with Some s -> s | None -> S.empty

let total cls = List.fold_left (fun acc (_, s) -> S.union acc s) S.empty cls.carries

let empty_cls = { carries = []; xml_cols = S.empty; violated = false; opaque = false }

let carries_of_refs cls refs =
  List.fold_left (fun acc c -> S.union acc (carried_by cls c)) S.empty refs

let rec classify ~table ~schema_of (op : Op.t) : cls =
  match op.Op.node with
  | Op.Table { table = t; cols; _ } ->
    if t = table then
      { empty_cls with carries = List.map (fun (src, out) -> (out, S.singleton src)) cols }
    else empty_cls
  | Op.Select { input; _ } -> classify ~table ~schema_of input
  | Op.Project { input; defs } ->
    let c = classify ~table ~schema_of input in
    let out_carries = ref [] in
    let out_xml = ref S.empty in
    let opaque = ref c.opaque in
    List.iter
      (fun (o, e) ->
        match e with
        | Expr.Col src ->
          out_carries := (o, carried_by c src) :: !out_carries;
          if S.mem src c.xml_cols then out_xml := S.add o !out_xml
        | Expr.Elem _ ->
          let refs = Expr.cols e in
          let inj_refs = Expr.injectively_embedded_cols e in
          let bad = S.diff (S.of_list refs) (S.of_list inj_refs) in
          if not (S.is_empty (S.inter (carries_of_refs c (S.elements bad)) (total c)))
          then opaque := true;
          if not (S.is_empty (carries_of_refs c (S.elements bad))) then opaque := true;
          out_xml := S.add o !out_xml;
          out_carries := (o, carries_of_refs c inj_refs) :: !out_carries
        | e ->
          (* scalar computation: carries nothing injectively *)
          ignore (Expr.cols e);
          out_carries := (o, S.empty) :: !out_carries)
      defs;
    let provided = List.fold_left (fun acc (_, s) -> S.union acc s) S.empty !out_carries in
    let required = total c in
    { carries = List.rev !out_carries;
      xml_cols = !out_xml;
      violated = c.violated || not (S.subset required provided);
      opaque = !opaque;
    }
  | Op.Join { kind; left; right; pred } -> (
    let l = classify ~table ~schema_of left and r = classify ~table ~schema_of right in
    match kind with
    | Op.Inner | Op.Left_outer ->
      let carries = l.carries @ r.carries in
      (* Inner-join equality predicates make equated columns interchangeable
         carriers: after pid = v_pid, either column recovers both sources. *)
      let carries =
        if kind = Op.Inner then begin
          let rec equalities = function
            | Expr.Binop (Relkit.Ra.And, a, b) -> equalities a @ equalities b
            | Expr.Binop (Relkit.Ra.Eq, Expr.Col a, Expr.Col b) -> [ (a, b) ]
            | _ -> []
          in
          List.fold_left
            (fun carries (a, b) ->
              let sa =
                match List.assoc_opt a carries with Some s -> s | None -> S.empty
              in
              let sb =
                match List.assoc_opt b carries with Some s -> s | None -> S.empty
              in
              let merged = S.union sa sb in
              let set col carries =
                if List.mem_assoc col carries then
                  List.map (fun (c, s) -> if c = col then (c, merged) else (c, s)) carries
                else (col, merged) :: carries
              in
              set a (set b carries))
            carries (equalities pred)
        end
        else carries
      in
      { carries;
        xml_cols = S.union l.xml_cols r.xml_cols;
        violated = l.violated || r.violated;
        opaque = l.opaque || r.opaque;
      }
    | Op.Left_anti ->
      if S.is_empty (total r) then l else { l with violated = true }
    | Op.Right_anti -> if S.is_empty (total l) then r else { r with violated = true })
  | Op.Group_by { input; keys; aggs; _ } ->
    let c = classify ~table ~schema_of input in
    let out_carries = ref [] in
    let out_xml = ref S.empty in
    let opaque = ref c.opaque in
    let frag_provided = ref S.empty in
    List.iter (fun k -> out_carries := (k, carried_by c k) :: !out_carries) keys;
    List.iter
      (fun (o, agg) ->
        match agg with
        | Expr.Xml_frag e ->
          let refs = Expr.cols e in
          let inj_refs = Expr.injectively_embedded_cols e in
          let bad = S.diff (S.of_list refs) (S.of_list inj_refs) in
          if not (S.is_empty (carries_of_refs c (S.elements bad))) then opaque := true;
          let carried = carries_of_refs c inj_refs in
          frag_provided := S.union carried !frag_provided;
          out_xml := S.add o !out_xml;
          out_carries := (o, carried) :: !out_carries
        | Expr.Count | Expr.Sum _ | Expr.Min _ | Expr.Max _ | Expr.Avg _ ->
          (* scalar aggregates carry nothing injectively *)
          out_carries := (o, S.empty) :: !out_carries)
      aggs;
    let required = total c in
    (* Base columns survive row collapse only inside aggXMLFrag, or when all
       of T's columns are grouping keys (keyed rows have no duplicates). *)
    let key_provided = carries_of_refs c keys in
    (* Keys alone cover T only when every scanned column of T is a grouping
       key (keyed rows have no duplicates, so the distinct set is the row
       set).  We approximate "every scanned column" by the primary key plus
       all carried columns. *)
    let pk = S.of_list (schema_of table).Relkit.Schema.primary_key in
    let covered =
      (* Rows individually identified inside a fragment (pk carried), with
         every remaining column either in the fragment or constant within the
         group (a grouping key) … *)
      (S.subset pk !frag_provided
      && S.subset required (S.union !frag_provided key_provided))
      (* … or the whole row visible as grouping keys. *)
      || (S.subset pk key_provided && S.subset required key_provided)
    in
    { carries = List.rev !out_carries;
      xml_cols = !out_xml;
      violated = c.violated || not covered;
      opaque = !opaque;
    }
  | Op.Union { cols = out_cols; inputs } -> (
    match inputs with
    | [ (input, mapping) ] ->
      let c = classify ~table ~schema_of input in
      { carries = List.map2 (fun out src -> (out, carried_by c src)) out_cols mapping;
        xml_cols =
          List.fold_left2
            (fun acc out src -> if S.mem src c.xml_cols then S.add out acc else acc)
            S.empty out_cols mapping;
        violated = c.violated;
        opaque = c.opaque;
      }
    | inputs ->
      (* Multi-input unions merge tuples across branches; we conservatively
         refuse to certify injectivity through them unless no branch touches
         T at all. *)
      let clss = List.map (fun (i, _) -> classify ~table ~schema_of i) inputs in
      if List.for_all (fun c -> S.is_empty (total c)) clss then
        { empty_cls with
          violated = List.exists (fun c -> c.violated) clss;
          opaque = List.exists (fun c -> c.opaque) clss;
        }
      else { empty_cls with violated = true })

(* The Agg-only pattern of Appendix F.4: the top operator is a Project whose
   element constructors reference only scalar input columns, each embedded
   injectively.  Comparing those referenced columns (plus scalar outputs)
   relationally is then equivalent to comparing the nodes. *)
let agg_only_pattern ~table ~schema_of (op : Op.t) =
  match op.Op.node with
  | Op.Project { input; defs } -> (
    let c = classify ~table ~schema_of input in
    if c.opaque then None
    else begin
      let ok = ref true in
      let compare_cols = ref S.empty in
      List.iter
        (fun (_, e) ->
          match e with
          | Expr.Col src ->
            if S.mem src c.xml_cols then ok := false
            else compare_cols := S.add src !compare_cols
          | Expr.Elem _ ->
            let refs = S.of_list (Expr.cols e) in
            let inj_refs = S.of_list (Expr.injectively_embedded_cols e) in
            if not (S.equal refs inj_refs) then ok := false;
            if not (S.is_empty (S.inter refs c.xml_cols)) then ok := false;
            compare_cols := S.union refs !compare_cols
          | e ->
            let refs = S.of_list (Expr.cols e) in
            if not (S.is_empty (S.inter refs c.xml_cols)) then ok := false;
            compare_cols := S.union refs !compare_cols)
        defs;
      if !ok then Some (S.elements !compare_cols) else None
    end)
  | _ -> None

let analyze ~table ~schema_of op =
  match classify ~table ~schema_of op with
  | { opaque = false; violated = false; _ } -> Injective
  | _ -> (
    match agg_only_pattern ~table ~schema_of op with
    | Some cols -> Agg_only cols
    | None -> Opaque)
  | exception Not_found -> Opaque
