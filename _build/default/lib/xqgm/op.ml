type binding = Post | Pre | Delta | Nabla
type join_kind = Inner | Left_outer | Left_anti | Right_anti

type t = {
  id : int;
  node : node;
}

and node =
  | Table of {
      table : string;
      binding : binding;
      cols : (string * string) list;
    }
  | Select of {
      input : t;
      pred : Expr.t;
    }
  | Project of {
      input : t;
      defs : (string * Expr.t) list;
    }
  | Join of {
      kind : join_kind;
      left : t;
      right : t;
      pred : Expr.t;
    }
  | Group_by of {
      input : t;
      keys : string list;
      aggs : (string * Expr.agg) list;
      order : string list;
    }
  | Union of {
      cols : string list;
      inputs : (t * string list) list;
    }

let binding_to_string = function
  | Post -> "POST"
  | Pre -> "PRE"
  | Delta -> "DELTA"
  | Nabla -> "NABLA"

let next_id =
  let counter = ref 0 in
  fun () ->
    incr counter;
    !counter

let mk node = { id = next_id (); node }

let rec cols op =
  match op.node with
  | Table t -> List.map snd t.cols
  | Select { input; _ } -> cols input
  | Project { defs; _ } -> List.map fst defs
  | Join { kind; left; right; _ } -> (
    match kind with
    | Inner | Left_outer -> cols left @ cols right
    | Left_anti -> cols left
    | Right_anti -> cols right)
  | Group_by { keys; aggs; _ } -> keys @ List.map fst aggs
  | Union u -> u.cols

let check_distinct what names =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun c ->
      if Hashtbl.mem tbl c then
        invalid_arg (Printf.sprintf "Xqgm.Op: duplicate column %S in %s" c what);
      Hashtbl.add tbl c ())
    names

let check_refs what input_cols refs =
  List.iter
    (fun c ->
      if not (List.mem c input_cols) then
        invalid_arg (Printf.sprintf "Xqgm.Op: %s references unknown column %S" what c))
    refs

let table ?(binding = Post) name col_map =
  check_distinct ("table scan of " ^ name) (List.map snd col_map);
  mk (Table { table = name; binding; cols = col_map })

let table_full ?(binding = Post) schema =
  table ~binding schema.Relkit.Schema.name
    (List.map (fun c -> (c, c)) (Relkit.Schema.column_names schema))

let select ~pred input =
  check_refs "selection predicate" (cols input) (Expr.cols pred);
  mk (Select { input; pred })

let project ~defs input =
  check_distinct "projection" (List.map fst defs);
  let input_cols = cols input in
  List.iter (fun (_, e) -> check_refs "projection" input_cols (Expr.cols e)) defs;
  mk (Project { input; defs })

let join ?(kind = Inner) ~pred left right =
  let lcols = cols left and rcols = cols right in
  (match kind with
  | Inner | Left_outer -> check_distinct "join output" (lcols @ rcols)
  | Left_anti | Right_anti -> ());
  check_refs "join predicate" (lcols @ rcols) (Expr.cols pred);
  mk (Join { kind; left; right; pred })

let group_by ~keys ~aggs ?(order = []) input =
  let input_cols = cols input in
  check_refs "grouping columns" input_cols keys;
  check_refs "group order columns" input_cols order;
  List.iter (fun (_, a) -> check_refs "aggregate" input_cols (Expr.agg_cols a)) aggs;
  check_distinct "group-by output" (keys @ List.map fst aggs);
  mk (Group_by { input; keys; aggs; order })

let union ~cols:out_cols inputs =
  check_distinct "union output" out_cols;
  let n = List.length out_cols in
  List.iter
    (fun (input, mapping) ->
      if List.length mapping <> n then
        invalid_arg "Xqgm.Op: union mapping arity mismatch";
      check_refs "union mapping" (cols input) mapping)
    inputs;
  if inputs = [] then invalid_arg "Xqgm.Op: empty union";
  mk (Union { cols = out_cols; inputs })

let rec to_old ~table:target op =
  match op.node with
  | Table { table; binding; cols } ->
    if table = target && binding = Post then mk (Table { table; binding = Pre; cols })
    else op
  | Select { input; pred } -> mk (Select { input = to_old ~table:target input; pred })
  | Project { input; defs } -> mk (Project { input = to_old ~table:target input; defs })
  | Join { kind; left; right; pred } ->
    mk
      (Join
         { kind;
           left = to_old ~table:target left;
           right = to_old ~table:target right;
           pred;
         })
  | Group_by { input; keys; aggs; order } ->
    mk (Group_by { input = to_old ~table:target input; keys; aggs; order })
  | Union { cols; inputs } ->
    mk
      (Union
         { cols;
           inputs = List.map (fun (i, m) -> (to_old ~table:target i, m)) inputs;
         })

let fold op ~init ~f =
  let seen = Hashtbl.create 16 in
  let rec go acc op =
    if Hashtbl.mem seen op.id then acc
    else begin
      Hashtbl.add seen op.id ();
      let acc =
        match op.node with
        | Table _ -> acc
        | Select { input; _ } | Project { input; _ } | Group_by { input; _ } -> go acc input
        | Join { left; right; _ } -> go (go acc left) right
        | Union { inputs; _ } -> List.fold_left (fun acc (i, _) -> go acc i) acc inputs
      in
      f acc op
    end
  in
  go init op

let scanned_tables op =
  fold op ~init:[] ~f:(fun acc o ->
      match o.node with
      | Table { table; binding; _ } ->
        if List.mem (table, binding) acc then acc else (table, binding) :: acc
      | _ -> acc)
