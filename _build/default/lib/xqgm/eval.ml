module Value = Relkit.Value
module Ra = Relkit.Ra
module Ra_eval = Relkit.Ra_eval
module Xml = Xmlkit.Xml

type xrel = {
  cols : string array;
  rows : Xval.t array list;
}

let col_index rel name =
  let n = Array.length rel.cols in
  let rec go i =
    if i >= n then raise Not_found else if rel.cols.(i) = name then i else go (i + 1)
  in
  go 0

let pp_xrel ppf rel =
  Format.fprintf ppf "@[<v>%s@," (String.concat " | " (Array.to_list rel.cols));
  List.iter
    (fun row ->
      Format.fprintf ppf "%s@,"
        (String.concat " | " (Array.to_list (Array.map Xval.to_string row))))
    rel.rows;
  Format.fprintf ppf "(%d rows)@]" (List.length rel.rows)

let compare_rows a b =
  let n = Array.length a in
  let rec go i =
    if i >= n then 0
    else
      let c = Xval.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let equal_xrel a b =
  Array.to_list a.cols = Array.to_list b.cols
  && List.equal
       (fun x y -> compare_rows x y = 0)
       (List.sort compare_rows a.rows)
       (List.sort compare_rows b.rows)

(* --- row hashing --- *)

module Xrow_key = struct
  type t = Xval.t array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec go i = i >= Array.length a || (Xval.equal a.(i) b.(i) && go (i + 1)) in
    go 0

  let hash r = Array.fold_left (fun acc v -> (acc * 31) + Xval.hash v) 7 r
end

module Xrow_tbl = Hashtbl.Make (Xrow_key)

(* --- expressions --- *)

let truthy = function
  | Xval.Atom (Value.Bool b) -> b
  | Xval.Atom Value.Null -> false
  | Xval.Seq [] -> false
  | v -> invalid_arg (Printf.sprintf "Xqgm.Eval: %s is not a boolean" (Xval.to_string v))

let items = function Xval.Seq xs -> xs | x -> [ x ]

let atom_of_item = function
  | Xval.Atom v -> v
  | Xval.Node n -> Value.String (Xml.text_content n)
  | Xval.Seq _ -> assert false (* sequences are flat *)

(* XQuery general comparison: existential over both operand sequences. *)
let general_cmp op a b =
  let holds x y =
    let x = atom_of_item x and y = atom_of_item y in
    if Value.is_null x || Value.is_null y then false
    else
      let c = Value.compare x y in
      match op with
      | Ra.Eq -> c = 0
      | Ra.Neq -> c <> 0
      | Ra.Lt -> c < 0
      | Ra.Le -> c <= 0
      | Ra.Gt -> c > 0
      | Ra.Ge -> c >= 0
      | Ra.And | Ra.Or | Ra.Add | Ra.Sub | Ra.Mul | Ra.Div | Ra.Mod ->
        invalid_arg "general_cmp: not a comparison"
  in
  Xval.atom (Value.Bool (List.exists (fun x -> List.exists (holds x) (items b)) (items a)))

let colmap cols =
  let m = Hashtbl.create (Array.length cols) in
  Array.iteri (fun i c -> Hashtbl.replace m c i) cols;
  m

let slot m c =
  match Hashtbl.find_opt m c with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Xqgm.Eval: unknown column %S" c)

let rec compile_expr m (e : Expr.t) : Xval.t array -> Xval.t =
  match e with
  | Expr.Col c ->
    let i = slot m c in
    fun row -> row.(i)
  | Expr.Const v -> fun _ -> Xval.atom v
  | Expr.Binop (op, a, b) -> (
    let fa = compile_expr m a and fb = compile_expr m b in
    match op with
    | Ra.Eq | Ra.Neq | Ra.Lt | Ra.Le | Ra.Gt | Ra.Ge ->
      fun row -> general_cmp op (fa row) (fb row)
    | Ra.And -> fun row -> Xval.atom (Value.Bool (truthy (fa row) && truthy (fb row)))
    | Ra.Or -> fun row -> Xval.atom (Value.Bool (truthy (fa row) || truthy (fb row)))
    | Ra.Add -> fun row -> Xval.atom (Value.add (Xval.atomize (fa row)) (Xval.atomize (fb row)))
    | Ra.Sub -> fun row -> Xval.atom (Value.sub (Xval.atomize (fa row)) (Xval.atomize (fb row)))
    | Ra.Mul -> fun row -> Xval.atom (Value.mul (Xval.atomize (fa row)) (Xval.atomize (fb row)))
    | Ra.Div -> fun row -> Xval.atom (Value.div (Xval.atomize (fa row)) (Xval.atomize (fb row)))
    | Ra.Mod ->
      fun row -> Xval.atom (Value.modulo (Xval.atomize (fa row)) (Xval.atomize (fb row))))
  | Expr.Not e ->
    let f = compile_expr m e in
    fun row -> Xval.atom (Value.Bool (not (truthy (f row))))
  | Expr.Is_null e ->
    let f = compile_expr m e in
    fun row ->
      let v = f row in
      Xval.atom (Value.Bool (match v with Xval.Atom a -> Value.is_null a | Xval.Seq [] -> true | _ -> false))
  | Expr.Elem { tag; attrs; content } ->
    let attr_fs = List.map (fun (k, e) -> (k, compile_expr m e)) attrs in
    let content_fs = List.map (compile_expr m) content in
    fun row ->
      let attrs =
        List.filter_map
          (fun (k, f) ->
            match Xval.atomize (f row) with
            | Value.Null -> None
            | v -> Some (k, Value.to_string v))
          attr_fs
      in
      let children = List.concat_map (fun f -> Xval.to_nodes (f row)) content_fs in
      Xval.node (Xml.elem ~attrs tag children)
  | Expr.Node_eq (a, b) ->
    let fa = compile_expr m a and fb = compile_expr m b in
    fun row -> Xval.atom (Value.Bool (Xval.equal (fa row) (fb row)))

let compile_pred m e =
  let f = compile_expr m e in
  fun row -> truthy (f row)

(* --- evaluation --- *)

let source_rows (ctx : Ra_eval.ctx) table (binding : Op.binding) =
  match binding with
  | Op.Post -> Relkit.Table.to_rows (Relkit.Database.get_table ctx.Ra_eval.db table)
  | Op.Pre -> Ra_eval.old_rows ctx table
  | Op.Delta -> fst (Ra_eval.transitions ctx table)
  | Op.Nabla -> snd (Ra_eval.transitions ctx table)

let eval ctx (top : Op.t) : xrel =
  let memo : (int, xrel) Hashtbl.t = Hashtbl.create 16 in
  let rec go (op : Op.t) : xrel =
    match Hashtbl.find_opt memo op.Op.id with
    | Some rel -> rel
    | None ->
      let rel = compute op in
      Hashtbl.add memo op.Op.id rel;
      rel
  and compute op =
    match op.Op.node with
    | Op.Table { table; binding; cols } ->
      let schema =
        Relkit.Table.schema (Relkit.Database.get_table ctx.Ra_eval.db table)
      in
      let slots = List.map (fun (src, _) -> Relkit.Schema.col_index schema src) cols in
      let rows =
        List.map
          (fun row -> Array.of_list (List.map (fun i -> Xval.atom row.(i)) slots))
          (source_rows ctx table binding)
      in
      { cols = Array.of_list (List.map snd cols); rows }
    | Op.Select { input; pred } ->
      let rel = go input in
      let f = compile_pred (colmap rel.cols) pred in
      { rel with rows = List.filter f rel.rows }
    | Op.Project { input; defs } ->
      let rel = go input in
      let m = colmap rel.cols in
      let fs = List.map (fun (_, e) -> compile_expr m e) defs in
      { cols = Array.of_list (List.map fst defs);
        rows = List.map (fun row -> Array.of_list (List.map (fun f -> f row) fs)) rel.rows;
      }
    | Op.Join { kind; left; right; pred } -> eval_join kind pred (go left) (go right)
    | Op.Group_by { input; keys; aggs; order } -> eval_group_by (go input) keys aggs order
    | Op.Union { cols; inputs } ->
      let rows =
        List.concat_map
          (fun (input, mapping) ->
            let rel = go input in
            let slots = List.map (fun c -> col_index rel c) mapping in
            List.map
              (fun row -> Array.of_list (List.map (fun i -> row.(i)) slots))
              rel.rows)
          inputs
      in
      (* Union removes duplicates (Table 1). *)
      let seen = Xrow_tbl.create 64 in
      let rows =
        List.filter
          (fun r ->
            if Xrow_tbl.mem seen r then false
            else begin
              Xrow_tbl.replace seen r ();
              true
            end)
          rows
      in
      { cols = Array.of_list cols; rows }
  and eval_join kind pred lrel rrel =
    let joined_cols = Array.append lrel.cols rrel.cols in
    let m = colmap joined_cols in
    (* split equi conjuncts for hashing *)
    let rec conjuncts = function
      | Expr.Binop (Ra.And, a, b) -> conjuncts a @ conjuncts b
      | Expr.Const (Value.Bool true) -> []
      | e -> [ e ]
    in
    let lset = Array.to_list lrel.cols and rset = Array.to_list rrel.cols in
    let equi, residual =
      List.partition_map
        (fun e ->
          match e with
          | Expr.Binop (Ra.Eq, Expr.Col a, Expr.Col b)
            when List.mem a lset && List.mem b rset ->
            Left (a, b)
          | Expr.Binop (Ra.Eq, Expr.Col a, Expr.Col b)
            when List.mem b lset && List.mem a rset ->
            Left (b, a)
          | e -> Right e)
        (conjuncts pred)
    in
    let residual_fs = List.map (compile_pred m) residual in
    let lm = colmap lrel.cols and rm = colmap rrel.cols in
    let l_slots = List.map (fun (a, _) -> slot lm a) equi in
    let r_slots = List.map (fun (_, b) -> slot rm b) equi in
    let key_of slots row = Array.of_list (List.map (fun i -> row.(i)) slots) in
    let passes lrow rrow =
      List.for_all2
        (fun li ri ->
          (* equi keys join by value equality; NULL atoms join with nothing *)
          let a = lrow.(li) and b = rrow.(ri) in
          (match a with Xval.Atom v when Value.is_null v -> false | _ -> true)
          && (match b with Xval.Atom v when Value.is_null v -> false | _ -> true)
          && Xval.equal a b)
        l_slots r_slots
      &&
      let joined = Array.append lrow rrow in
      List.for_all (fun f -> f joined) residual_fs
    in
    let matches_of =
      if equi = [] then fun lrow -> List.filter (passes lrow) rrel.rows
      else begin
        let index : Xval.t array list ref Xrow_tbl.t = Xrow_tbl.create 64 in
        List.iter
          (fun rrow ->
            let key = key_of r_slots rrow in
            match Xrow_tbl.find_opt index key with
            | Some cell -> cell := rrow :: !cell
            | None -> Xrow_tbl.replace index key (ref [ rrow ]))
          rrel.rows;
        fun lrow ->
          match Xrow_tbl.find_opt index (key_of l_slots lrow) with
          | None -> []
          | Some cell -> List.filter (passes lrow) (List.rev !cell)
      end
    in
    match kind with
    | Op.Inner ->
      let out = ref [] in
      List.iter
        (fun lrow ->
          List.iter (fun rrow -> out := Array.append lrow rrow :: !out) (matches_of lrow))
        lrel.rows;
      { cols = joined_cols; rows = List.rev !out }
    | Op.Left_outer ->
      let pad = Array.make (Array.length rrel.cols) (Xval.atom Value.Null) in
      let out = ref [] in
      List.iter
        (fun lrow ->
          match matches_of lrow with
          | [] -> out := Array.append lrow pad :: !out
          | ms -> List.iter (fun rrow -> out := Array.append lrow rrow :: !out) ms)
        lrel.rows;
      { cols = joined_cols; rows = List.rev !out }
    | Op.Left_anti ->
      { cols = lrel.cols; rows = List.filter (fun lrow -> matches_of lrow = []) lrel.rows }
    | Op.Right_anti ->
      let matched =
        List.filter
          (fun rrow -> not (List.exists (fun lrow -> passes lrow rrow) lrel.rows))
          rrel.rows
      in
      { cols = rrel.cols; rows = matched }
  and eval_group_by rel keys aggs order =
    let m = colmap rel.cols in
    let key_slots = List.map (slot m) keys in
    let order_slots = List.map (slot m) order in
    let groups : Xval.t array list ref Xrow_tbl.t = Xrow_tbl.create 64 in
    let group_order = ref [] in
    List.iter
      (fun row ->
        let key = Array.of_list (List.map (fun i -> row.(i)) key_slots) in
        match Xrow_tbl.find_opt groups key with
        | Some cell -> cell := row :: !cell
        | None ->
          Xrow_tbl.replace groups key (ref [ row ]);
          group_order := key :: !group_order)
      rel.rows;
    let sort_rows rows =
      if order_slots = [] then List.rev rows
      else
        List.sort
          (fun a b ->
            let rec go = function
              | [] -> 0
              | i :: rest ->
                let c = Xval.compare a.(i) b.(i) in
                if c <> 0 then c else go rest
            in
            go order_slots)
          rows
    in
    let agg_fs =
      List.map
        (fun (_, a) ->
          match a with
          | Expr.Count -> fun rows -> Xval.atom (Value.Int (List.length rows))
          | Expr.Sum e ->
            let f = compile_expr m e in
            fun rows ->
              Xval.atom
                (List.fold_left
                   (fun acc row ->
                     let v = Xval.atomize (f row) in
                     if Value.is_null v then acc
                     else match acc with Value.Null -> v | acc -> Value.add acc v)
                   Value.Null rows)
          | Expr.Min e ->
            let f = compile_expr m e in
            fun rows ->
              Xval.atom
                (List.fold_left
                   (fun acc row ->
                     let v = Xval.atomize (f row) in
                     if Value.is_null v then acc
                     else
                       match acc with
                       | Value.Null -> v
                       | acc -> if Value.compare v acc < 0 then v else acc)
                   Value.Null rows)
          | Expr.Max e ->
            let f = compile_expr m e in
            fun rows ->
              Xval.atom
                (List.fold_left
                   (fun acc row ->
                     let v = Xval.atomize (f row) in
                     if Value.is_null v then acc
                     else
                       match acc with
                       | Value.Null -> v
                       | acc -> if Value.compare v acc > 0 then v else acc)
                   Value.Null rows)
          | Expr.Avg e ->
            let f = compile_expr m e in
            fun rows ->
              let vals =
                List.filter_map
                  (fun row ->
                    let v = Xval.atomize (f row) in
                    if Value.is_null v then None else Some (Value.to_float v))
                  rows
              in
              if vals = [] then Xval.atom Value.Null
              else
                Xval.atom
                  (Value.Float (List.fold_left ( +. ) 0.0 vals /. float_of_int (List.length vals)))
          | Expr.Xml_frag e ->
            let f = compile_expr m e in
            fun rows -> Xval.seq (List.map f rows))
        aggs
    in
    let out_rows =
      if keys = [] then
        (* Scalar aggregate: one row even over empty input. *)
        let rows = sort_rows (List.rev rel.rows) in
        [ Array.of_list (List.map (fun f -> f rows) agg_fs) ]
      else
        List.rev_map
          (fun key ->
            let rows = sort_rows !(Xrow_tbl.find groups key) in
            Array.append key (Array.of_list (List.map (fun f -> f rows) agg_fs)))
          !group_order
    in
    { cols = Array.of_list (keys @ List.map fst aggs); rows = out_rows }
  in
  go top

let eval_sorted ctx ~by op =
  let rel = eval ctx op in
  let slots = List.map (fun c -> col_index rel c) by in
  let cmp a b =
    let rec go = function
      | [] -> 0
      | i :: rest ->
        let c = Xval.compare a.(i) b.(i) in
        if c <> 0 then c else go rest
    in
    go slots
  in
  { rel with rows = List.stable_sort cmp rel.rows }
