(** Pretty-printing of XQGM graphs, in the boxes-and-arrows spirit of the
    paper's Figure 5 (rendered as an indented tree; shared operators print
    once and are referenced by id afterwards). *)

val pp : Format.formatter -> Op.t -> unit
val to_string : Op.t -> string
