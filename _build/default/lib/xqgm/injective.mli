(** Injectivity analysis (Appendix F of the paper).

    A view graph is *injective* w.r.t. a base table T when each output tuple
    determines the exact set of T-rows it was built from.  For injective
    views the OLD≠NEW comparison at the top of G_affected can be dropped
    entirely (Theorem 3); when the only non-injectivity comes from scalar
    aggregates over T-derived columns (e.g. a min-price view), the comparison
    can be pushed down to those aggregate columns (Appendix F.4).

    The analysis implements the sufficient conditions of Appendix F.2 — it
    can answer [Opaque] for views that are in fact injective, which only
    costs performance, never correctness. *)

type verdict =
  | Injective
  | Agg_only of string list
      (** non-injective only through these (scalar, comparable) output
          columns of the top operator — compare them instead of the nodes *)
  | Opaque  (** fall back to full node comparison *)

val analyze :
  table:string -> schema_of:(string -> Relkit.Schema.t) -> Op.t -> verdict

val verdict_to_string : verdict -> string
