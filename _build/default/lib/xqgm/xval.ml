module Value = Relkit.Value
module Xml = Xmlkit.Xml

type t =
  | Atom of Value.t
  | Node of Xml.t
  | Seq of t list

let atom v = Atom v
let node n = Node n

let seq items =
  let flat = List.concat_map (function Seq xs -> xs | x -> [ x ]) items in
  match flat with [ x ] -> x | xs -> Seq xs

let empty = Seq []

let rank = function Atom _ -> 0 | Node _ -> 1 | Seq _ -> 2

let rec compare a b =
  match a, b with
  | Atom x, Atom y -> Value.compare x y
  | Node x, Node y -> Xml.compare x y
  | Seq x, Seq y -> List.compare compare x y
  | (Atom _ | Node _ | Seq _), _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let rec hash = function
  | Atom v -> Value.hash v
  | Node n -> Hashtbl.hash (Xml.to_string ~canonical:true n)
  | Seq xs -> List.fold_left (fun acc x -> (acc * 31) + hash x) 13 xs

let rec to_nodes = function
  | Atom Value.Null -> []
  | Atom v -> [ Xml.text (Value.to_string v) ]
  | Node n -> [ n ]
  | Seq xs -> List.concat_map to_nodes xs

let atomize = function
  | Atom v -> v
  | Node n -> Value.String (Xml.text_content n)
  | Seq [] -> Value.Null
  | Seq [ x ] -> (
    match x with
    | Atom v -> v
    | Node n -> Value.String (Xml.text_content n)
    | Seq _ -> assert false (* sequences are flat *))
  | Seq _ -> invalid_arg "Xval.atomize: sequence of more than one item"

let item_count = function Seq xs -> List.length xs | Atom _ | Node _ -> 1

let rec to_string = function
  | Atom v -> Value.to_string v
  | Node n -> Xml.to_string ~canonical:true n
  | Seq xs -> "(" ^ String.concat ", " (List.map to_string xs) ^ ")"

let pp ppf v = Format.pp_print_string ppf (to_string v)
