let rec pp_op seen ppf (op : Op.t) =
  if Hashtbl.mem seen op.Op.id then Format.fprintf ppf "(see #%d)" op.Op.id
  else begin
    Hashtbl.add seen op.Op.id ();
    match op.Op.node with
    | Op.Table { table; binding; cols } ->
      let show (s, o) = if s = o then s else s ^ " AS " ^ o in
      Format.fprintf ppf "#%d Table %s[%s] (%s)" op.Op.id table
        (Op.binding_to_string binding)
        (String.concat ", " (List.map show cols))
    | Op.Select { input; pred } ->
      Format.fprintf ppf "@[<v 2>#%d Select %s@,%a@]" op.Op.id (Expr.to_string pred)
        (pp_op seen) input
    | Op.Project { input; defs } ->
      let show (o, e) = Printf.sprintf "%s := %s" o (Expr.to_string e) in
      Format.fprintf ppf "@[<v 2>#%d Project [%s]@,%a@]" op.Op.id
        (String.concat "; " (List.map show defs))
        (pp_op seen) input
    | Op.Join { kind; left; right; pred } ->
      let kname =
        match kind with
        | Op.Inner -> "Join"
        | Op.Left_outer -> "LeftOuterJoin"
        | Op.Left_anti -> "LeftAntiJoin"
        | Op.Right_anti -> "RightAntiJoin"
      in
      Format.fprintf ppf "@[<v 2>#%d %s %s@,%a@,%a@]" op.Op.id kname (Expr.to_string pred)
        (pp_op seen) left (pp_op seen) right
    | Op.Group_by { input; keys; aggs; order } ->
      let show (o, a) = Printf.sprintf "%s := %s" o (Expr.agg_to_string a) in
      Format.fprintf ppf "@[<v 2>#%d GroupBy keys [%s] aggs [%s]%s@,%a@]" op.Op.id
        (String.concat ", " keys)
        (String.concat "; " (List.map show aggs))
        (if order = [] then "" else " order [" ^ String.concat ", " order ^ "]")
        (pp_op seen) input
    | Op.Union { cols; inputs } ->
      Format.fprintf ppf "@[<v 2>#%d Union -> [%s]" op.Op.id (String.concat ", " cols);
      List.iter
        (fun (i, mapping) ->
          Format.fprintf ppf "@,@[<v 2>via [%s]@,%a@]" (String.concat ", " mapping)
            (pp_op seen) i)
        inputs;
      Format.fprintf ppf "@]"
  end

let pp ppf op = pp_op (Hashtbl.create 16) ppf op
let to_string op = Format.asprintf "%a" pp op
