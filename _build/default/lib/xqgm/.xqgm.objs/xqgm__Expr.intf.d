lib/xqgm/expr.mli: Relkit
