lib/xqgm/op.mli: Expr Relkit
