lib/xqgm/print.mli: Format Op
