lib/xqgm/expr.ml: List Printf Relkit String
