lib/xqgm/xval.ml: Format Hashtbl Int List Relkit String Xmlkit
