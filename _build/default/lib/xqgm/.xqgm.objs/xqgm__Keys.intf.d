lib/xqgm/keys.mli: Op Relkit
