lib/xqgm/eval.ml: Array Expr Format Hashtbl List Op Printf Relkit String Xmlkit Xval
