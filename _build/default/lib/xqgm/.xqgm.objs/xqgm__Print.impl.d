lib/xqgm/print.ml: Expr Format Hashtbl List Op Printf String
