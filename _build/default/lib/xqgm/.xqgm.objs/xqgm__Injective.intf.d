lib/xqgm/injective.mli: Op Relkit
