lib/xqgm/eval.mli: Format Op Relkit Xval
