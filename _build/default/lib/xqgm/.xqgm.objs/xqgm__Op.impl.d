lib/xqgm/op.ml: Expr Hashtbl List Printf Relkit
