lib/xqgm/keys.ml: Expr List Op Printf Relkit String
