lib/xqgm/xval.mli: Format Relkit Xmlkit
