lib/xqgm/injective.ml: Expr List Op Relkit Set String
