exception Not_trigger_specifiable of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Not_trigger_specifiable msg)) fmt

let rec canonical_key ~schema_of (op : Op.t) =
  match op.Op.node with
  | Op.Table { table; cols; _ } ->
    let schema = schema_of table in
    let pk = schema.Relkit.Schema.primary_key in
    if pk = [] then fail "table %S has no primary key" table;
    List.map
      (fun k ->
        match List.assoc_opt k cols with
        | Some out -> out
        | None -> fail "table scan of %S does not expose key column %S" table k)
      pk
  | Op.Select { input; _ } -> canonical_key ~schema_of input
  | Op.Project { input; defs } ->
    (* The key must be propagated as plain column references ("existing or
       derivable" columns, Definition 1); the front-end guarantees this by
       always passing keys through. *)
    let input_key = canonical_key ~schema_of input in
    List.map
      (fun k ->
        match
          List.find_opt (fun (_, e) -> match e with Expr.Col c -> c = k | _ -> false) defs
        with
        | Some (out, _) -> out
        | None -> fail "projection drops key column %S of its input" k)
      input_key
  | Op.Join { kind; left; right; pred } -> (
    (* Key minimization: joining a GroupBy on an equality covering all its
       grouping columns matches at most one group per outer row, so the
       grouped side adds no key columns.  Besides producing the minimal keys
       of the paper's Figure 5, this keeps outer-join padding (NULLs) out of
       key columns. *)
    let equalities =
      let rec go = function
        | Expr.Binop (Relkit.Ra.And, a, b) -> go a @ go b
        | Expr.Binop (Relkit.Ra.Eq, Expr.Col a, Expr.Col b) -> [ (a, b); (b, a) ]
        | _ -> []
      in
      go pred
    in
    let grouped_determined side other =
      match side.Op.node with
      | Op.Group_by { keys = gkeys; _ } ->
        gkeys <> []
        &&
        let other_cols = Op.cols other in
        List.for_all
          (fun g ->
            List.exists (fun (a, b) -> a = g && List.mem b other_cols) equalities)
          gkeys
      | _ -> false
    in
    match kind with
    | Op.Inner | Op.Left_outer ->
      let lk = canonical_key ~schema_of left in
      if grouped_determined right left then lk
      else if kind = Op.Inner && grouped_determined left right then
        canonical_key ~schema_of right
      else lk @ canonical_key ~schema_of right
    | Op.Left_anti -> canonical_key ~schema_of left
    | Op.Right_anti -> canonical_key ~schema_of right)
  | Op.Group_by { keys; _ } ->
    if keys = [] then
      (* A scalar aggregate produces exactly one tuple; its key is empty. *)
      []
    else keys
  | Op.Union { cols; inputs } ->
    (* Key = union over inputs of the output columns their keys map to. *)
    let out_of_input input mapping k =
      (* mapping.(i) is the input column feeding output column i *)
      let rec go outs maps =
        match outs, maps with
        | out :: outs, m :: maps -> if m = k then Some out else go outs maps
        | _, _ -> None
      in
      match go cols mapping with
      | Some out -> Some out
      | None ->
        fail "union input %d does not map key column %S to any output" input.Op.id k
    in
    let keys =
      List.concat_map
        (fun (input, mapping) ->
          List.filter_map (out_of_input input mapping) (canonical_key ~schema_of input))
        inputs
    in
    List.sort_uniq String.compare keys

(* The unminimized variant: concatenate at joins.  Project lookups still go
   through [canonical_key] recursion where possible; here we only need the
   union of derivable key columns. *)
let rec full_key ~schema_of (op : Op.t) =
  match op.Op.node with
  | Op.Table _ | Op.Group_by _ | Op.Union _ -> canonical_key ~schema_of op
  | Op.Select { input; _ } -> full_key ~schema_of input
  | Op.Project { input; defs } ->
    let input_key = full_key ~schema_of input in
    List.filter_map
      (fun k ->
        match
          List.find_opt (fun (_, e) -> match e with Expr.Col c -> c = k | _ -> false) defs
        with
        | Some (out, _) -> Some out
        | None -> None)
      input_key
  | Op.Join { kind; left; right; _ } -> (
    match kind with
    | Op.Inner | Op.Left_outer -> full_key ~schema_of left @ full_key ~schema_of right
    | Op.Left_anti -> full_key ~schema_of left
    | Op.Right_anti -> full_key ~schema_of right)

let trigger_specifiable ~schema_of op =
  let check acc o = match acc with
    | Error _ -> acc
    | Ok () -> (
      match canonical_key ~schema_of o with
      | (_ : string list) -> Ok ()
      | exception Not_trigger_specifiable msg -> Error msg)
  in
  Op.fold op ~init:(Ok ()) ~f:check
