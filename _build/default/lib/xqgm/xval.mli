(** Values flowing through XQGM operators: atomic SQL values, XML nodes, or
    ordered sequences of either (the result of aggXMLFrag). *)

type t =
  | Atom of Relkit.Value.t
  | Node of Xmlkit.Xml.t
  | Seq of t list  (** flat: never contains a nested [Seq] *)

val atom : Relkit.Value.t -> t
val node : Xmlkit.Xml.t -> t

(** Builds a flattened sequence. *)
val seq : t list -> t

val empty : t

(** Total order: atoms first (by {!Relkit.Value.compare}), then nodes, then
    sequences, lexicographically. *)
val compare : t -> t -> int

val equal : t -> t -> bool
val hash : t -> int

(** Flattens to a list of XML nodes; atoms become text nodes (the XQuery
    atomization inverse used by element constructors). *)
val to_nodes : t -> Xmlkit.Xml.t list

(** The atomic value of a singleton, atomizing nodes to their string value.
    [Seq []] atomizes to NULL; longer sequences raise.
    @raise Invalid_argument on a non-singleton sequence. *)
val atomize : t -> Relkit.Value.t

val item_count : t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit
