lib/relkit/ra_eval.ml: Array Database Format Hashtbl List Option Printf Ra Schema String Table Value
