lib/relkit/ra_opt.ml: Hashtbl List Marshal Option Printf Ra
