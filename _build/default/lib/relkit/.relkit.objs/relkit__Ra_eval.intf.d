lib/relkit/ra_eval.mli: Database Format Hashtbl Ra Value
