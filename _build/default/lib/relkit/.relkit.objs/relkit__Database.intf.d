lib/relkit/database.mli: Schema Table Value
