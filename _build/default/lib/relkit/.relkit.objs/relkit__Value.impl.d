lib/relkit/value.ml: Bool Buffer Float Format Hashtbl Int Printf String
