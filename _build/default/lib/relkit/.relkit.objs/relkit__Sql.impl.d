lib/relkit/sql.ml: Array Buffer Database Hashtbl List Option Printf Ra Ra_eval Schema String Table Value
