lib/relkit/value.mli: Format
