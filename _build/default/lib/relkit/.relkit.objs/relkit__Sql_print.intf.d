lib/relkit/sql_print.mli: Database Ra
