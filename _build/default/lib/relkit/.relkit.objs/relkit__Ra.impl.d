lib/relkit/ra.ml: Format Hashtbl List Printf Schema String Value
