lib/relkit/sql_print.ml: Array Database List Printf Ra String Value
