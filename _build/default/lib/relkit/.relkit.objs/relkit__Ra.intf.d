lib/relkit/ra.mli: Format Schema Value
