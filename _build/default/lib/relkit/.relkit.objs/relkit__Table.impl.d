lib/relkit/table.ml: Array Hashtbl List Printf Schema String Value
