lib/relkit/ra_opt.mli: Ra
