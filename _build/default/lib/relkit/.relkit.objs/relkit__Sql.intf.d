lib/relkit/sql.mli: Database Ra Ra_eval
