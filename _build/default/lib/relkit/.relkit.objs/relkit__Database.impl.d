lib/relkit/database.ml: Array Fun Hashtbl List Printf Schema String Table Value
