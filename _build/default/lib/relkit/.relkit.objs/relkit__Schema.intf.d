lib/relkit/schema.mli: Format Value
