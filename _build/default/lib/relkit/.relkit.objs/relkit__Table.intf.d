lib/relkit/table.mli: Schema Value
