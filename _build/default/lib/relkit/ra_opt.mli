(** Plan rewrites used by trigger pushdown (§5.2 of the paper).

    [push_semijoin] restricts a plan to the rows whose link columns appear in
    a (small) key relation, pushing the restriction as deep as possible —
    through selections, projections, one side of a join, grouping columns and
    unions — so that base-table and OLD-OF scans are probed by index instead
    of scanned.  This is the "push down the join on affected keys"
    transformation that keeps per-update cost proportional to the number of
    affected nodes (Figure 16, lines 15-20; Figure 23's flat scaling). *)

(** [push_semijoin ~keys ~on plan] returns a plan with the same columns as
    [plan] whose rows are those of [plan] matching some row of [keys] on the
    [on] pairs [(plan column, keys column)].  [keys] is deduplicated
    internally, so multiplicities of [plan] are preserved.  [Ra.Shared]
    subplans are never rewritten (the restriction attaches above them). *)
val push_semijoin : keys:Ra.t -> on:(string * string) list -> Ra.t -> Ra.t

(** As {!push_semijoin}, but [None] when the restriction could only attach at
    the plan's root (no progress was made).  Used by the executor's sideways
    information passing to avoid rewriting plans it cannot improve. *)
val push_semijoin_deep :
  keys:Ra.t -> on:(string * string) list -> Ra.t -> Ra.t option

(** [push_transition_joins plan] finds inner joins where exactly one side
    derives from the statement's transition tables (Δ/∇ scans somewhere
    below) and semijoin-restricts the other side by it — the paper's
    "push down the join on affected keys" (Figure 16: ProductCount computes
    counts only for AffectedKeys).  The transition side is wrapped in
    {!Ra.Shared} so it is evaluated once per firing. *)
val push_transition_joins : Ra.t -> Ra.t

(** Structural common-subexpression elimination: identical subtrees
    containing at least one join or group-by are wrapped in a single
    {!Ra.Shared} so the engine evaluates them once per firing (the WITH
    clauses of the generated SQL trigger). *)
val share_common_subplans : Ra.t -> Ra.t
