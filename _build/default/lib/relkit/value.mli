(** SQL-style atomic values stored in relational tables.

    [Null] follows three-valued-logic conventions where relevant: comparisons
    against [Null] are false, and [Null] equals no value (including itself)
    under [sql_eq], but [compare]/[equal] give a total structural order so
    values can key hash tables and be sorted deterministically. *)

type t =
  | Null
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

(** Total structural comparison: Null < Bool < Int < Float < String, with
    Int/Float compared numerically against each other. *)
val compare : t -> t -> int

(** Structural equality consistent with [compare]. *)
val equal : t -> t -> bool

(** Hash consistent with [equal]. *)
val hash : t -> int

(** SQL equality: [Null] is not equal to anything; Int/Float compare
    numerically. *)
val sql_eq : t -> t -> bool

val is_null : t -> bool

(** Numeric coercion helpers.  @raise Invalid_argument on non-numeric input. *)
val to_float : t -> float

val to_int : t -> int

(** [to_string] renders the value as it would appear in query output;
    [Null] prints as ["NULL"]. *)
val to_string : t -> string

(** Renders the value as a SQL literal (strings quoted and escaped). *)
val to_sql_literal : t -> string

val pp : Format.formatter -> t -> unit

(** Arithmetic with numeric promotion; any [Null] operand yields [Null].
    @raise Invalid_argument on non-numeric operands or division by zero. *)
val add : t -> t -> t

val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val modulo : t -> t -> t
val neg : t -> t
