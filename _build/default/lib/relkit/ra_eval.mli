(** Executor for {!Ra} plans.

    Physical planning is done on the fly:
    - equi-join conjuncts are detected and executed as hash joins;
    - a join whose inner side is a (possibly filtered) scan of a base table
      with a usable index — or of [Old_of] — runs as an index-nested-loop
      join, probing per outer row;
    - probes against [Old_of b] hit [b]'s index and patch the result with the
      statement's Δ/∇ rows, so the pre-update state is never materialized
      (Design decision 2 in DESIGN.md). *)

type rel = {
  cols : string array;
  rows : Value.t array list;
}

(** Evaluation context: the (post-update) database plus the transition
    tables of the firing statement, and any auxiliary named relations. *)
type ctx = {
  db : Database.t;
  trans : (string * (Value.t array list * Value.t array list)) list;
      (** table → (Δ rows, ∇ rows) *)
  rels : (string * rel) list;  (** bindings for {!Ra.Rel} sources *)
  shared_memo : (int, rel) Hashtbl.t;
      (** per-firing cache for {!Ra.Shared} subplans; fresh in each context *)
}

val ctx_of_trigger : Database.trigger_ctx -> ctx

(** Context over a quiescent database: all transition tables empty. *)
val ctx_of_db : Database.t -> ctx

(** @raise Invalid_argument on malformed plans or unknown sources. *)
val eval : ctx -> Ra.t -> rel

(** Rows of table [name] in the pre-statement state, reconstructed from the
    current contents and the transition tables (the paper's B_old). *)
val old_rows : ctx -> string -> Value.t array list

(** The (Δ, ∇) transition rows recorded for a table (empty pair if none). *)
val transitions : ctx -> string -> Value.t array list * Value.t array list

(** Column position in a relation.  @raise Not_found if absent. *)
val col_index : rel -> string -> int

(** Rows as association lists, for tests. *)
val rows_assoc : rel -> (string * Value.t) list list

(** Deterministically sorted copy (all columns ascending), for comparisons. *)
val sorted : rel -> rel

val equal_rel : rel -> rel -> bool
val pp_rel : Format.formatter -> rel -> unit

(** Debug / test accounting of rows materialized by full source scans (index
    probes do not count).  Tests use this to assert that affected-key
    pushdown keeps per-update work independent of table sizes. *)
val reset_scan_rows : unit -> unit

val scan_rows_total : unit -> int
val scan_rows_report : unit -> (string * int) list
