(** Renders {!Ra} plans as readable SQL text — the printable bodies of the
    generated SQL triggers (cf. Figure 16 of the paper).

    The output is documentation-quality SQL in the DB2 dialect the paper
    targets: transition tables print as [INSERTED] / [DELETED], and
    [Old_of b] prints as the paper's
    [(SELECT * FROM b EXCEPT SELECT * FROM INSERTED) UNION (SELECT * FROM
    DELETED)] reconstruction. *)

val expr_to_sql : Ra.expr -> string

(** SQL (sub)query text for a plan. *)
val plan_to_sql : Ra.t -> string

(** Full [CREATE TRIGGER] statement around a plan body. *)
val trigger_to_sql :
  name:string -> table:string -> event:Database.event -> body:Ra.t -> string
