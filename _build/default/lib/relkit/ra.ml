type source =
  | Base of string
  | Delta of string
  | Nabla of string
  | Old_of of string
  | Rel of string

type binop =
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
  | Add
  | Sub
  | Mul
  | Div
  | Mod

type expr =
  | Col of string
  | Const of Value.t
  | Binop of binop * expr * expr
  | Not of expr
  | Is_null of expr

type agg =
  | Count_star
  | Count of expr
  | Sum of expr
  | Min of expr
  | Max of expr
  | Avg of expr

type join_kind = Inner | Left_outer | Left_anti | Right_anti
type dir = Asc | Desc

type t =
  | Scan of source * (string * string) list
  | Select of expr * t
  | Project of (string * expr) list * t
  | Join of join_kind * expr * t * t
  | Group_by of string list * (string * agg) list * t
  | Union of { all : bool; inputs : t list }
  | Distinct of t
  | Order_by of (string * dir) list * t
  | Values of string list * Value.t array list
  | Shared of int * t

let next_shared_id =
  let counter = ref 0 in
  fun () ->
    incr counter;
    !counter

let shared plan = Shared (next_shared_id (), plan)

let check_distinct what cols =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun c ->
      if Hashtbl.mem tbl c then
        invalid_arg (Printf.sprintf "Ra: duplicate column %S in %s" c what);
      Hashtbl.add tbl c ())
    cols

let rec columns = function
  | Scan (_, renames) ->
    let cols = List.map snd renames in
    check_distinct "scan output" cols;
    cols
  | Select (_, input) -> columns input
  | Project (defs, _) ->
    let cols = List.map fst defs in
    check_distinct "projection" cols;
    cols
  | Join (kind, _, left, right) -> (
    match kind with
    | Inner | Left_outer ->
      let cols = columns left @ columns right in
      check_distinct "join output" cols;
      cols
    | Left_anti -> columns left
    | Right_anti -> columns right)
  | Group_by (keys, aggs, _) ->
    let cols = keys @ List.map fst aggs in
    check_distinct "group-by output" cols;
    cols
  | Union { inputs; _ } -> (
    match inputs with
    | [] -> invalid_arg "Ra: empty union"
    | first :: rest ->
      let cols = columns first in
      let n = List.length cols in
      List.iter
        (fun input ->
          if List.length (columns input) <> n then
            invalid_arg "Ra: union inputs have mismatched arities")
        rest;
      cols)
  | Distinct input -> columns input
  | Order_by (_, input) -> columns input
  | Values (cols, _) -> cols
  | Shared (_, input) -> columns input

let scan src schema =
  Scan (src, List.map (fun c -> (c, c)) (Schema.column_names schema))

let scan_as src ~prefix schema =
  Scan (src, List.map (fun c -> (c, prefix ^ c)) (Schema.column_names schema))

let conj = function
  | [] -> Const (Value.Bool true)
  | e :: rest -> List.fold_left (fun acc e' -> Binop (And, acc, e')) e rest

let eq_cols pairs = conj (List.map (fun (l, r) -> Binop (Eq, Col l, Col r)) pairs)

let rec expr_columns = function
  | Col c -> [ c ]
  | Const _ -> []
  | Binop (_, a, b) -> expr_columns a @ expr_columns b
  | Not e | Is_null e -> expr_columns e

let string_of_binop = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "AND"
  | Or -> "OR"
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"

let rec pp_expr ppf = function
  | Col c -> Format.pp_print_string ppf c
  | Const v -> Format.pp_print_string ppf (Value.to_sql_literal v)
  | Binop (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp_expr a (string_of_binop op) pp_expr b
  | Not e -> Format.fprintf ppf "NOT %a" pp_expr e
  | Is_null e -> Format.fprintf ppf "%a IS NULL" pp_expr e

let string_of_source = function
  | Base t -> t
  | Delta t -> "INSERTED(" ^ t ^ ")"
  | Nabla t -> "DELETED(" ^ t ^ ")"
  | Old_of t -> "OLD-OF(" ^ t ^ ")"
  | Rel t -> "REL(" ^ t ^ ")"

let string_of_agg = function
  | Count_star -> "COUNT(*)"
  | Count e -> Format.asprintf "COUNT(%a)" pp_expr e
  | Sum e -> Format.asprintf "SUM(%a)" pp_expr e
  | Min e -> Format.asprintf "MIN(%a)" pp_expr e
  | Max e -> Format.asprintf "MAX(%a)" pp_expr e
  | Avg e -> Format.asprintf "AVG(%a)" pp_expr e

let rec pp ppf = function
  | Scan (src, renames) ->
    let show (c, o) = if c = o then c else c ^ " AS " ^ o in
    Format.fprintf ppf "@[<hov 2>Scan %s [%s]@]" (string_of_source src)
      (String.concat ", " (List.map show renames))
  | Select (pred, input) ->
    Format.fprintf ppf "@[<v 2>Select %a@,%a@]" pp_expr pred pp input
  | Project (defs, input) ->
    let show (o, e) = Format.asprintf "%a AS %s" pp_expr e o in
    Format.fprintf ppf "@[<v 2>Project [%s]@,%a@]"
      (String.concat ", " (List.map show defs))
      pp input
  | Join (kind, pred, left, right) ->
    let kname =
      match kind with
      | Inner -> "Join"
      | Left_outer -> "LeftOuterJoin"
      | Left_anti -> "LeftAntiJoin"
      | Right_anti -> "RightAntiJoin"
    in
    Format.fprintf ppf "@[<v 2>%s %a@,%a@,%a@]" kname pp_expr pred pp left pp right
  | Group_by (keys, aggs, input) ->
    let show (o, a) = string_of_agg a ^ " AS " ^ o in
    Format.fprintf ppf "@[<v 2>GroupBy [%s] aggs [%s]@,%a@]"
      (String.concat ", " keys)
      (String.concat ", " (List.map show aggs))
      pp input
  | Union { all; inputs } ->
    Format.fprintf ppf "@[<v 2>Union%s" (if all then "All" else "");
    List.iter (fun i -> Format.fprintf ppf "@,%a" pp i) inputs;
    Format.fprintf ppf "@]"
  | Distinct input -> Format.fprintf ppf "@[<v 2>Distinct@,%a@]" pp input
  | Order_by (keys, input) ->
    let show (c, d) = c ^ (match d with Asc -> " ASC" | Desc -> " DESC") in
    Format.fprintf ppf "@[<v 2>OrderBy [%s]@,%a@]"
      (String.concat ", " (List.map show keys))
      pp input
  | Values (cols, rows) ->
    Format.fprintf ppf "Values [%s] (%d rows)" (String.concat ", " cols)
      (List.length rows)
  | Shared (id, input) -> Format.fprintf ppf "@[<v 2>Shared cte%d@,%a@]" id pp input
