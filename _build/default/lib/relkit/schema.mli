(** Table schemas: typed columns, primary keys, unique and foreign-key
    constraints.

    Rows are stored as [Value.t array] in schema column order; [col_index]
    maps a column name to its array slot. *)

type col_type = TInt | TFloat | TString | TBool

type column = {
  col_name : string;
  col_type : col_type;
  nullable : bool;
}

type foreign_key = {
  fk_columns : string list;  (** referencing columns in this table *)
  fk_table : string;  (** referenced table *)
  fk_ref_columns : string list;  (** referenced columns (usually its PK) *)
}

type t = {
  name : string;
  columns : column list;
  primary_key : string list;  (** non-empty for trigger-specifiable tables *)
  uniques : string list list;
  foreign_keys : foreign_key list;
}

(** Build a schema.  @raise Invalid_argument if the primary key or a
    constraint references an unknown column, or column names repeat. *)
val make :
  ?uniques:string list list ->
  ?foreign_keys:foreign_key list ->
  name:string ->
  columns:(string * col_type) list ->
  primary_key:string list ->
  unit ->
  t

val column_names : t -> string list

(** Position of a column in the row array.  @raise Not_found if absent. *)
val col_index : t -> string -> int

val has_column : t -> string -> bool
val arity : t -> int

(** Type name as it appears in SQL DDL ([INT], [FLOAT], …). *)
val string_of_col_type : col_type -> string

(** Checks arity, column types ([Null] only in nullable columns).
    @return an error description on failure. *)
val validate_row : t -> Value.t array -> (unit, string) result

(** Primary-key projection of a row, in PK column order. *)
val pk_of_row : t -> Value.t array -> Value.t list

val pp : Format.formatter -> t -> unit
