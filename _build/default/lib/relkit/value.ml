type t =
  | Null
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 2
  | String _ -> 3

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | String x, String y -> String.compare x y
  | (Null | Bool _ | Int _ | Float _ | String _), _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 17
  | Bool b -> if b then 31 else 37
  | Int i -> Hashtbl.hash (float_of_int i)
  | Float f -> Hashtbl.hash f
  | String s -> Hashtbl.hash s

let sql_eq a b =
  match a, b with
  | Null, _ | _, Null -> false
  | _ -> equal a b

let is_null = function Null -> true | Bool _ | Int _ | Float _ | String _ -> false

let to_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | Bool _ | String _ | Null -> invalid_arg "Value.to_float: not numeric"

let to_int = function
  | Int i -> i
  | Float f -> int_of_float f
  | Bool _ | String _ | Null -> invalid_arg "Value.to_int: not numeric"

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%g" f

let to_string = function
  | Null -> "NULL"
  | Int i -> string_of_int i
  | Float f -> float_repr f
  | String s -> s
  | Bool b -> if b then "true" else "false"

let to_sql_literal = function
  | Null -> "NULL"
  | Int i -> string_of_int i
  | Float f -> float_repr f
  | String s ->
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '\'';
    String.iter
      (fun c ->
        if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '\'';
    Buffer.contents buf
  | Bool b -> if b then "TRUE" else "FALSE"

let pp ppf v = Format.pp_print_string ppf (to_string v)

let arith name int_op float_op a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (int_op x y)
  | (Int _ | Float _), (Int _ | Float _) -> Float (float_op (to_float a) (to_float b))
  | _ -> invalid_arg (Printf.sprintf "Value.%s: not numeric" name)

let add a b = arith "add" ( + ) ( +. ) a b
let sub a b = arith "sub" ( - ) ( -. ) a b
let mul a b = arith "mul" ( * ) ( *. ) a b

let div a b =
  match b with
  | Int 0 -> invalid_arg "Value.div: division by zero"
  | Float f when f = 0.0 -> invalid_arg "Value.div: division by zero"
  | _ -> arith "div" ( / ) ( /. ) a b

let modulo a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | Int _, Int 0 -> invalid_arg "Value.modulo: division by zero"
  | Int x, Int y -> Int (x mod y)
  | _ -> invalid_arg "Value.modulo: not integers"

let neg = function
  | Null -> Null
  | Int i -> Int (-i)
  | Float f -> Float (-.f)
  | Bool _ | String _ -> invalid_arg "Value.neg: not numeric"
