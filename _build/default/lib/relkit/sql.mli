(** A SQL front-end for the relational substrate: DDL, DML and a SELECT
    subset, compiled onto {!Schema} / {!Database} / {!Ra}.

    This is the surface a downstream user of `relkit` scripts against (and
    what the CLI accepts); the trigger-translation pipeline itself constructs
    {!Ra} plans directly.

    Supported statements:
    {v
    CREATE TABLE t (c INT [PRIMARY KEY], d VARCHAR, …,
                    PRIMARY KEY (c, …),
                    FOREIGN KEY (c) REFERENCES t2 (c2))
    CREATE INDEX ON t (c)
    INSERT INTO t VALUES (v, …), (v, …)
    UPDATE t SET c = expr, … [WHERE expr]
    DELETE FROM t [WHERE expr]
    SELECT expr [AS name], … | *
      FROM t [alias] [, t2 [alias] …]
      [WHERE expr]
      [GROUP BY col, …] [HAVING expr]
      [ORDER BY col [ASC|DESC], …]
    v}

    Expressions: column references ([c] or [alias.c]), literals, arithmetic,
    comparisons, [AND]/[OR]/[NOT], [IS [NOT] NULL], and the aggregates
    COUNT star, [COUNT(c)], [SUM], [MIN], [MAX], [AVG] in the SELECT list or
    HAVING clause.  Keywords are case-insensitive. *)

exception Error of string

type result =
  | Rows of Ra_eval.rel  (** SELECT *)
  | Affected of int  (** INSERT/UPDATE/DELETE: row count *)
  | Done  (** DDL *)

(** Executes one statement (DML fires triggers as usual).
    @raise Error on parse, planning or constraint problems. *)
val exec : Database.t -> string -> result

(** Parses and plans a SELECT without executing it. *)
val plan_select : Database.t -> string -> Ra.t

(** Executes a whole script (statements separated by [;]); returns the
    results in order. *)
val exec_script : Database.t -> string -> result list
