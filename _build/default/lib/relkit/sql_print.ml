let string_of_binop = function
  | Ra.Eq -> "="
  | Ra.Neq -> "<>"
  | Ra.Lt -> "<"
  | Ra.Le -> "<="
  | Ra.Gt -> ">"
  | Ra.Ge -> ">="
  | Ra.And -> "AND"
  | Ra.Or -> "OR"
  | Ra.Add -> "+"
  | Ra.Sub -> "-"
  | Ra.Mul -> "*"
  | Ra.Div -> "/"
  | Ra.Mod -> "%"

let rec expr_to_sql = function
  | Ra.Col c -> c
  | Ra.Const v -> Value.to_sql_literal v
  | Ra.Binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_sql a) (string_of_binop op) (expr_to_sql b)
  | Ra.Not e -> Printf.sprintf "NOT (%s)" (expr_to_sql e)
  | Ra.Is_null e -> Printf.sprintf "(%s IS NULL)" (expr_to_sql e)

let agg_to_sql = function
  | Ra.Count_star -> "COUNT(*)"
  | Ra.Count e -> Printf.sprintf "COUNT(%s)" (expr_to_sql e)
  | Ra.Sum e -> Printf.sprintf "SUM(%s)" (expr_to_sql e)
  | Ra.Min e -> Printf.sprintf "MIN(%s)" (expr_to_sql e)
  | Ra.Max e -> Printf.sprintf "MAX(%s)" (expr_to_sql e)
  | Ra.Avg e -> Printf.sprintf "AVG(%s)" (expr_to_sql e)

let source_to_sql = function
  | Ra.Base t -> t
  | Ra.Delta _ -> "INSERTED"
  | Ra.Nabla _ -> "DELETED"
  | Ra.Old_of t ->
    Printf.sprintf
      "((SELECT * FROM %s EXCEPT SELECT * FROM INSERTED) UNION ALL (SELECT * FROM DELETED))"
      t
  | Ra.Rel t -> t

let indent s =
  String.split_on_char '\n' s |> List.map (fun l -> "  " ^ l) |> String.concat "\n"

(* Each plan node renders as a full SELECT query (wrapped as a derived table
   when nested).  A fresh alias generator keeps derived tables distinct. *)
let fresh_alias =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "q%d" !n

(* Shared subplans print as WITH clauses collected by [plan_to_sql]. *)
let rec to_select (plan : Ra.t) : string =
  match plan with
  | Ra.Shared (id, _) -> Printf.sprintf "SELECT * FROM cte%d" id
  | Ra.Scan (src, renames) ->
    let items =
      List.map (fun (s, o) -> if s = o then s else Printf.sprintf "%s AS %s" s o) renames
    in
    Printf.sprintf "SELECT %s\nFROM %s" (String.concat ", " items) (source_to_sql src)
  | Ra.Select (pred, input) ->
    Printf.sprintf "SELECT *\nFROM (\n%s\n) AS %s\nWHERE %s"
      (indent (to_select input)) (fresh_alias ()) (expr_to_sql pred)
  | Ra.Project (defs, input) ->
    let items = List.map (fun (o, e) -> Printf.sprintf "%s AS %s" (expr_to_sql e) o) defs in
    Printf.sprintf "SELECT %s\nFROM (\n%s\n) AS %s" (String.concat ", " items)
      (indent (to_select input)) (fresh_alias ())
  | Ra.Join (kind, pred, left, right) ->
    let la = fresh_alias () and ra = fresh_alias () in
    let cond = expr_to_sql pred in
    (match kind with
    | Ra.Inner ->
      Printf.sprintf "SELECT *\nFROM (\n%s\n) AS %s\nJOIN (\n%s\n) AS %s\nON %s"
        (indent (to_select left)) la (indent (to_select right)) ra cond
    | Ra.Left_outer ->
      Printf.sprintf "SELECT *\nFROM (\n%s\n) AS %s\nLEFT OUTER JOIN (\n%s\n) AS %s\nON %s"
        (indent (to_select left)) la (indent (to_select right)) ra cond
    | Ra.Left_anti ->
      Printf.sprintf
        "SELECT *\nFROM (\n%s\n) AS %s\nWHERE NOT EXISTS (\n  SELECT 1 FROM (\n%s\n  ) AS %s WHERE %s\n)"
        (indent (to_select left)) la (indent (indent (to_select right))) ra cond
    | Ra.Right_anti ->
      Printf.sprintf
        "SELECT *\nFROM (\n%s\n) AS %s\nWHERE NOT EXISTS (\n  SELECT 1 FROM (\n%s\n  ) AS %s WHERE %s\n)"
        (indent (to_select right)) ra (indent (indent (to_select left))) la cond)
  | Ra.Group_by (keys, aggs, input) ->
    let items =
      keys @ List.map (fun (o, a) -> Printf.sprintf "%s AS %s" (agg_to_sql a) o) aggs
    in
    let group = if keys = [] then "" else "\nGROUP BY " ^ String.concat ", " keys in
    Printf.sprintf "SELECT %s\nFROM (\n%s\n) AS %s%s" (String.concat ", " items)
      (indent (to_select input)) (fresh_alias ()) group
  | Ra.Union { all; inputs } ->
    let sep = if all then "\nUNION ALL\n" else "\nUNION\n" in
    String.concat sep
      (List.map (fun i -> Printf.sprintf "(\n%s\n)" (indent (to_select i))) inputs)
  | Ra.Distinct input ->
    Printf.sprintf "SELECT DISTINCT *\nFROM (\n%s\n) AS %s" (indent (to_select input))
      (fresh_alias ())
  | Ra.Order_by (keys, input) ->
    let items =
      List.map (fun (c, d) -> c ^ match d with Ra.Asc -> "" | Ra.Desc -> " DESC") keys
    in
    Printf.sprintf "%s\nORDER BY %s" (to_select input) (String.concat ", " items)
  | Ra.Values (cols, rows) ->
    let row_sql row =
      Printf.sprintf "(%s)"
        (String.concat ", " (Array.to_list (Array.map Value.to_sql_literal row)))
    in
    Printf.sprintf "SELECT * FROM (VALUES %s) AS v(%s)"
      (String.concat ", " (List.map row_sql rows))
      (String.concat ", " cols)

let rec collect_shared acc (plan : Ra.t) =
  let go = collect_shared in
  match plan with
  | Ra.Shared (id, input) ->
    let acc = go acc input in
    if List.mem_assoc id acc then acc else acc @ [ (id, input) ]
  | Ra.Scan _ | Ra.Values _ -> acc
  | Ra.Select (_, i) | Ra.Project (_, i) | Ra.Group_by (_, _, i) | Ra.Distinct i
  | Ra.Order_by (_, i) ->
    go acc i
  | Ra.Join (_, _, l, r) -> go (go acc l) r
  | Ra.Union { inputs; _ } -> List.fold_left go acc inputs

let plan_to_sql plan =
  match collect_shared [] plan with
  | [] -> to_select plan
  | shared ->
    let ctes =
      List.map
        (fun (id, body) -> Printf.sprintf "cte%d AS (\n%s\n)" id (indent (to_select body)))
        shared
    in
    Printf.sprintf "WITH %s\n%s" (String.concat ",\n" ctes) (to_select plan)

let trigger_to_sql ~name ~table ~event ~body =
  Printf.sprintf
    "CREATE TRIGGER %s\nAFTER %s ON %s\nREFERENCING OLD_TABLE AS DELETED, NEW_TABLE AS INSERTED\nFOR EACH STATEMENT\n%s"
    name
    (Database.string_of_event event)
    table (plan_to_sql body)
