type col_type = TInt | TFloat | TString | TBool

type column = {
  col_name : string;
  col_type : col_type;
  nullable : bool;
}

type foreign_key = {
  fk_columns : string list;
  fk_table : string;
  fk_ref_columns : string list;
}

type t = {
  name : string;
  columns : column list;
  primary_key : string list;
  uniques : string list list;
  foreign_keys : foreign_key list;
}

let column_names t = List.map (fun c -> c.col_name) t.columns

let has_column t name = List.exists (fun c -> c.col_name = name) t.columns

let col_index t name =
  let rec go i = function
    | [] -> raise Not_found
    | c :: rest -> if c.col_name = name then i else go (i + 1) rest
  in
  go 0 t.columns

let arity t = List.length t.columns

let check_cols_exist t what cols =
  List.iter
    (fun c ->
      if not (has_column t c) then
        invalid_arg
          (Printf.sprintf "Schema.make: %s references unknown column %S in table %S"
             what c t.name))
    cols

let make ?(uniques = []) ?(foreign_keys = []) ~name ~columns ~primary_key () =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (c, _) ->
      if Hashtbl.mem seen c then
        invalid_arg (Printf.sprintf "Schema.make: duplicate column %S in %S" c name);
      Hashtbl.add seen c ())
    columns;
  let mk_col (col_name, col_type) =
    (* Primary-key columns are implicitly NOT NULL. *)
    { col_name; col_type; nullable = not (List.mem col_name primary_key) }
  in
  let t =
    { name;
      columns = List.map mk_col columns;
      primary_key;
      uniques;
      foreign_keys;
    }
  in
  check_cols_exist t "primary key" primary_key;
  List.iter (check_cols_exist t "unique constraint") uniques;
  List.iter (fun fk -> check_cols_exist t "foreign key" fk.fk_columns) foreign_keys;
  t

let string_of_col_type = function
  | TInt -> "INT"
  | TFloat -> "FLOAT"
  | TString -> "VARCHAR"
  | TBool -> "BOOLEAN"

let type_matches ty (v : Value.t) =
  match ty, v with
  | TInt, Value.Int _ -> true
  | TFloat, (Value.Float _ | Value.Int _) -> true
  | TString, Value.String _ -> true
  | TBool, Value.Bool _ -> true
  | (TInt | TFloat | TString | TBool), _ -> false

let validate_row t row =
  if Array.length row <> arity t then
    Error
      (Printf.sprintf "row arity %d does not match table %S arity %d"
         (Array.length row) t.name (arity t))
  else begin
    let err = ref None in
    List.iteri
      (fun i c ->
        if !err = None then
          match row.(i) with
          | Value.Null ->
            if not c.nullable then
              err := Some (Printf.sprintf "NULL in non-nullable column %S" c.col_name)
          | v ->
            if not (type_matches c.col_type v) then
              err :=
                Some
                  (Printf.sprintf "value %s has wrong type for column %S (%s)"
                     (Value.to_string v) c.col_name
                     (string_of_col_type c.col_type)))
      t.columns;
    match !err with None -> Ok () | Some e -> Error e
  end

let pk_of_row t row = List.map (fun c -> row.(col_index t c)) t.primary_key

let pp ppf t =
  Format.fprintf ppf "@[<v 2>TABLE %s (" t.name;
  List.iter
    (fun c ->
      Format.fprintf ppf "@,%s %s%s," c.col_name
        (string_of_col_type c.col_type)
        (if c.nullable then "" else " NOT NULL"))
    t.columns;
  Format.fprintf ppf "@,PRIMARY KEY (%s)" (String.concat ", " t.primary_key);
  Format.fprintf ppf ")@]"
