(** A small XML parser for tests, fixtures and the CLI.

    Supports elements, attributes (single or double quoted), text, the five
    predefined entities, comments, and an optional XML declaration.  It does
    not support namespaces, DTDs or CDATA — none are needed for the views this
    system produces.

    Whitespace-only text between elements is dropped, so parsing the output
    of {!Xml.to_pretty_string} round-trips. *)

exception Parse_error of string

(** @raise Parse_error on malformed input. *)
val parse : string -> Xml.t

val parse_opt : string -> Xml.t option
