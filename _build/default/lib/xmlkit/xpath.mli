(** XPath-subset evaluation over materialized XML nodes.

    This is the oracle-side XPath: the MATERIALIZED baseline and the test
    suite navigate real XML trees with it.  The production path never
    materializes the view — trigger paths are composed with the view's XQGM
    graph instead (see [Xquery.Compose]).

    Supported, mirroring the paper's Appendix D: [child], [descendant]
    ([//]), [attribute] ([@x]) and [self] ([.]) axes; name tests and [*];
    predicates combining relative paths, literals, position tests and the six
    comparison operators with [and]/[or].  Attribute results are returned as
    synthetic text nodes carrying the attribute value. *)

type axis = Child | Descendant | Attribute | Self

type node_test = Name of string | Any

type path = {
  absolute : bool;
  steps : step list;
}

and step = {
  axis : axis;
  test : node_test;
  preds : pred list;
}

and pred =
  | Cmp of cmp * operand * operand
  | Exists of path
  | Position of int
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

and operand = Path of path | Lit of string | Num of float

and cmp = Eq | Neq | Lt | Le | Gt | Ge

exception Parse_error of string

(** Parses expressions like [/catalog/product[@name='CRT 15']//vendor/vid].
    @raise Parse_error on malformed input. *)
val parse : string -> path

(** Evaluates a path against a context node.  Absolute paths start at the
    context node itself (it is the document root). *)
val eval : Xml.t -> path -> Xml.t list

(** [select node expr] parses and evaluates. *)
val select : Xml.t -> string -> Xml.t list

(** Text content of each result node. *)
val select_strings : Xml.t -> string -> string list

val path_to_string : path -> string
