exception Parse_error of string

type state = {
  input : string;
  mutable pos : int;
}

let fail st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))
let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st (Printf.sprintf "expected %C" c)

let starts_with st prefix =
  let n = String.length prefix in
  st.pos + n <= String.length st.input && String.sub st.input st.pos n = prefix

let skip_string st prefix =
  if starts_with st prefix then st.pos <- st.pos + String.length prefix
  else fail st (Printf.sprintf "expected %S" prefix)

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_ws st =
  while (match peek st with Some c when is_space c -> true | _ -> false) do
    advance st
  done

let skip_comment st =
  skip_string st "<!--";
  let rec go () =
    if starts_with st "-->" then skip_string st "-->"
    else if st.pos >= String.length st.input then fail st "unterminated comment"
    else begin
      advance st;
      go ()
    end
  in
  go ()

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' -> true
  | _ -> false

let read_name st =
  let start = st.pos in
  while (match peek st with Some c when is_name_char c -> true | _ -> false) do
    advance st
  done;
  if st.pos = start then fail st "expected a name";
  String.sub st.input start (st.pos - start)

let decode_entities st raw =
  let buf = Buffer.create (String.length raw) in
  let n = String.length raw in
  let i = ref 0 in
  while !i < n do
    if raw.[!i] = '&' then begin
      match String.index_from_opt raw !i ';' with
      | None -> fail st "unterminated entity"
      | Some j ->
        let name = String.sub raw (!i + 1) (j - !i - 1) in
        let repl =
          match name with
          | "amp" -> "&"
          | "lt" -> "<"
          | "gt" -> ">"
          | "quot" -> "\""
          | "apos" -> "'"
          | _ ->
            if String.length name > 1 && name.[0] = '#' then
              let code =
                if name.[1] = 'x' then
                  int_of_string ("0x" ^ String.sub name 2 (String.length name - 2))
                else int_of_string (String.sub name 1 (String.length name - 1))
              in
              if code < 128 then String.make 1 (Char.chr code)
              else fail st "non-ASCII character references are not supported"
            else fail st (Printf.sprintf "unknown entity &%s;" name)
        in
        Buffer.add_string buf repl;
        i := j + 1
    end
    else begin
      Buffer.add_char buf raw.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let read_attr_value st =
  let quote =
    match peek st with
    | Some (('"' | '\'') as q) ->
      advance st;
      q
    | _ -> fail st "expected a quoted attribute value"
  in
  let start = st.pos in
  while (match peek st with Some c when c <> quote -> true | _ -> false) do
    advance st
  done;
  let raw = String.sub st.input start (st.pos - start) in
  expect st quote;
  decode_entities st raw

let rec read_attrs st acc =
  skip_ws st;
  match peek st with
  | Some ('>' | '/') -> List.rev acc
  | Some _ ->
    let name = read_name st in
    skip_ws st;
    expect st '=';
    skip_ws st;
    let value = read_attr_value st in
    read_attrs st ((name, value) :: acc)
  | None -> fail st "unterminated start tag"

let rec read_element st =
  expect st '<';
  let tag = read_name st in
  let attrs = read_attrs st [] in
  match peek st with
  | Some '/' ->
    advance st;
    expect st '>';
    Xml.elem ~attrs tag []
  | Some '>' ->
    advance st;
    let children = read_content st tag [] in
    Xml.elem ~attrs tag children
  | _ -> fail st "malformed start tag"

and read_content st tag acc =
  if starts_with st "<!--" then begin
    skip_comment st;
    read_content st tag acc
  end
  else if starts_with st "</" then begin
    skip_string st "</";
    let close = read_name st in
    if close <> tag then
      fail st (Printf.sprintf "mismatched closing tag </%s> for <%s>" close tag);
    skip_ws st;
    expect st '>';
    List.rev acc
  end
  else if starts_with st "<" then read_content st tag (read_element st :: acc)
  else begin
    let start = st.pos in
    while (match peek st with Some c when c <> '<' -> true | None -> false | _ -> false) do
      advance st
    done;
    if st.pos >= String.length st.input then fail st "unterminated element";
    let raw = String.sub st.input start (st.pos - start) in
    let acc =
      if String.for_all is_space raw then acc
      else Xml.text (decode_entities st raw) :: acc
    in
    read_content st tag acc
  end

let parse input =
  let st = { input; pos = 0 } in
  skip_ws st;
  if starts_with st "<?" then begin
    match String.index_from_opt input st.pos '>' with
    | Some j -> st.pos <- j + 1
    | None -> fail st "unterminated XML declaration"
  end;
  skip_ws st;
  while starts_with st "<!--" do
    skip_comment st;
    skip_ws st
  done;
  let node = read_element st in
  skip_ws st;
  if st.pos <> String.length input then fail st "trailing content after document element";
  node

let parse_opt input = match parse input with n -> Some n | exception Parse_error _ -> None
