type axis = Child | Descendant | Attribute | Self
type node_test = Name of string | Any

type path = {
  absolute : bool;
  steps : step list;
}

and step = {
  axis : axis;
  test : node_test;
  preds : pred list;
}

and pred =
  | Cmp of cmp * operand * operand
  | Exists of path
  | Position of int
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

and operand = Path of path | Lit of string | Num of float
and cmp = Eq | Neq | Lt | Le | Gt | Ge

exception Parse_error of string

(* --- parsing --- *)

type lexer = {
  input : string;
  mutable pos : int;
}

let lfail lx msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg lx.pos))
let lpeek lx = if lx.pos < String.length lx.input then Some lx.input.[lx.pos] else None

let ladv lx = lx.pos <- lx.pos + 1

let skip_ws lx =
  while (match lpeek lx with Some (' ' | '\t' | '\n') -> true | _ -> false) do
    ladv lx
  done

let lstarts lx s =
  let n = String.length s in
  lx.pos + n <= String.length lx.input && String.sub lx.input lx.pos n = s

let leat lx s = if lstarts lx s then (lx.pos <- lx.pos + String.length s; true) else false

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' -> true
  | _ -> false

let is_name_start = function 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false

let read_name lx =
  let start = lx.pos in
  while (match lpeek lx with Some c when is_name_char c -> true | _ -> false) do
    ladv lx
  done;
  if lx.pos = start then lfail lx "expected a name";
  String.sub lx.input start (lx.pos - start)

let read_number lx =
  let start = lx.pos in
  while
    match lpeek lx with Some ('0' .. '9' | '.') -> true | _ -> false
  do
    ladv lx
  done;
  float_of_string (String.sub lx.input start (lx.pos - start))

let read_string_lit lx quote =
  ladv lx;
  let start = lx.pos in
  while (match lpeek lx with Some c when c <> quote -> true | _ -> false) do
    ladv lx
  done;
  (match lpeek lx with Some _ -> () | None -> lfail lx "unterminated string literal");
  let s = String.sub lx.input start (lx.pos - start) in
  ladv lx;
  s

let rec parse_path lx ~absolute_ok =
  skip_ws lx;
  let absolute = absolute_ok && (lstarts lx "/" || lstarts lx "//") in
  let steps = ref [] in
  let rec loop ~first =
    skip_ws lx;
    let axis =
      if leat lx "//" then Some Descendant
      else if leat lx "/" then Some Child
      else if first then
        (* A relative path may start directly with a step. *)
        match lpeek lx with
        | Some c when is_name_start c || c = '@' || c = '*' || c = '.' -> Some Child
        | _ -> None
      else None
    in
    match axis with
    | None -> ()
    | Some axis ->
      let axis, test =
        match lpeek lx with
        | Some '@' ->
          ladv lx;
          (Attribute, Name (read_name lx))
        | Some '*' ->
          ladv lx;
          (axis, Any)
        | Some '.' ->
          ladv lx;
          (Self, Any)
        | Some c when is_name_start c -> (axis, Name (read_name lx))
        | _ -> lfail lx "expected a step"
      in
      let preds = ref [] in
      skip_ws lx;
      while lstarts lx "[" do
        ignore (leat lx "[");
        preds := parse_pred lx :: !preds;
        skip_ws lx;
        if not (leat lx "]") then lfail lx "expected ]";
        skip_ws lx
      done;
      steps := { axis; test; preds = List.rev !preds } :: !steps;
      loop ~first:false
  in
  (* For absolute paths the leading / or // is consumed inside the loop as the
     first step's axis marker. *)
  loop ~first:(not absolute);
  { absolute; steps = List.rev !steps }

and parse_pred lx =
  let left = parse_or lx in
  left

and parse_or lx =
  let left = parse_and lx in
  skip_ws lx;
  if leat lx " or " || (skip_ws lx; lstarts lx "or " && leat lx "or ") then
    Or (left, parse_or lx)
  else left

and parse_and lx =
  let left = parse_atom_pred lx in
  skip_ws lx;
  if lstarts lx "and " && leat lx "and " then And (left, parse_and lx) else left

and parse_atom_pred lx =
  skip_ws lx;
  if lstarts lx "not(" then begin
    ignore (leat lx "not(");
    let inner = parse_pred lx in
    skip_ws lx;
    if not (leat lx ")") then lfail lx "expected )";
    Not inner
  end
  else
    match lpeek lx with
    | Some ('0' .. '9') -> (
      let n = read_number lx in
      skip_ws lx;
      match parse_cmp_op lx with
      | Some op ->
        let right = parse_operand lx in
        Cmp (op, Num n, right)
      | None -> Position (int_of_float n))
    | _ -> (
      let left = parse_operand lx in
      skip_ws lx;
      match parse_cmp_op lx with
      | Some op ->
        let right = parse_operand lx in
        Cmp (op, left, right)
      | None -> (
        match left with
        | Path p -> Exists p
        | Lit _ | Num _ -> lfail lx "literal is not a predicate"))

and parse_cmp_op lx =
  skip_ws lx;
  if leat lx "!=" then Some Neq
  else if leat lx "<=" then Some Le
  else if leat lx ">=" then Some Ge
  else if leat lx "=" then Some Eq
  else if leat lx "<" then Some Lt
  else if leat lx ">" then Some Gt
  else None

and parse_operand lx =
  skip_ws lx;
  match lpeek lx with
  | Some ('\'' | '"') ->
    let q = Option.get (lpeek lx) in
    Lit (read_string_lit lx q)
  | Some ('0' .. '9') -> Num (read_number lx)
  | _ -> Path (parse_path lx ~absolute_ok:false)

let parse input =
  let lx = { input; pos = 0 } in
  let p = parse_path lx ~absolute_ok:true in
  skip_ws lx;
  if lx.pos <> String.length input then lfail lx "trailing characters";
  if p.steps = [] then lfail lx "empty path";
  p

(* --- evaluation --- *)

let test_matches test node =
  match test, node with
  | Any, Xml.Element _ -> true
  | Name n, Xml.Element { tag; _ } -> tag = n
  | _, Xml.Text _ -> false

let rec descend node =
  node :: List.concat_map descend (Xml.children node)

let string_value = Xml.text_content

let to_num s = float_of_string_opt (String.trim s)

let cmp_strings op a b =
  let c =
    match to_num a, to_num b with
    | Some x, Some y -> Float.compare x y
    | _ -> String.compare a b
  in
  match op with
  | Eq -> c = 0
  | Neq -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let rec eval_steps nodes steps =
  match steps with
  | [] -> nodes
  | step :: rest ->
    let selected =
      List.concat_map
        (fun node ->
          match step.axis with
          | Child -> List.filter (test_matches step.test) (Xml.children node)
          | Descendant ->
            List.filter (test_matches step.test)
              (List.concat_map descend (Xml.children node))
          | Self -> [ node ]
          | Attribute -> (
            match step.test with
            | Name n -> (
              match Xml.attr node n with Some v -> [ Xml.text v ] | None -> [])
            | Any -> (
              match node with
              | Xml.Element { attrs; _ } -> List.map (fun (_, v) -> Xml.text v) attrs
              | Xml.Text _ -> [])))
        nodes
    in
    let filtered =
      List.fold_left
        (fun nodes pred ->
          List.filteri (fun i node -> eval_pred node (i + 1) pred) nodes)
        selected step.preds
    in
    eval_steps filtered rest

and eval_pred node position = function
  | Position n -> position = n
  | Exists p -> eval_path node p <> []
  | And (a, b) -> eval_pred node position a && eval_pred node position b
  | Or (a, b) -> eval_pred node position a || eval_pred node position b
  | Not p -> not (eval_pred node position p)
  | Cmp (op, l, r) ->
    let values = function
      | Lit s -> [ s ]
      | Num f ->
        [ (if Float.is_integer f then string_of_int (int_of_float f) else string_of_float f) ]
      | Path p -> List.map string_value (eval_path node p)
    in
    (* XPath existential comparison semantics over node sets. *)
    List.exists (fun a -> List.exists (fun b -> cmp_strings op a b) (values r)) (values l)

and eval_path node p = eval_steps [ node ] p.steps

let eval node p = eval_steps [ node ] p.steps
let select node expr = eval node (parse expr)
let select_strings node expr = List.map string_value (select node expr)

(* --- printing --- *)

let string_of_cmp = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec path_to_string p =
  let step_str s =
    let prefix = match s.axis with Descendant -> "//" | _ -> "/" in
    let name =
      match s.axis, s.test with
      | Attribute, Name n -> "@" ^ n
      | Attribute, Any -> "@*"
      | Self, _ -> "."
      | _, Name n -> n
      | _, Any -> "*"
    in
    prefix ^ name ^ String.concat "" (List.map (fun pr -> "[" ^ pred_to_string pr ^ "]") s.preds)
  in
  let body = String.concat "" (List.map step_str p.steps) in
  if p.absolute then body
  else if String.length body > 0 && body.[0] = '/' then String.sub body 1 (String.length body - 1)
  else body

and pred_to_string = function
  | Position n -> string_of_int n
  | Exists p -> path_to_string p
  | And (a, b) -> pred_to_string a ^ " and " ^ pred_to_string b
  | Or (a, b) -> pred_to_string a ^ " or " ^ pred_to_string b
  | Not p -> "not(" ^ pred_to_string p ^ ")"
  | Cmp (op, l, r) ->
    let operand = function
      | Lit s -> "'" ^ s ^ "'"
      | Num f -> if Float.is_integer f then string_of_int (int_of_float f) else string_of_float f
      | Path p -> path_to_string p
    in
    operand l ^ " " ^ string_of_cmp op ^ " " ^ operand r
