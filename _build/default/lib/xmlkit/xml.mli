(** XML node model used throughout the system: the values of XML-typed view
    columns, the payloads handed to trigger actions, and the output of the
    tagger. *)

type t =
  | Element of {
      tag : string;
      attrs : (string * string) list;
      children : t list;
    }
  | Text of string

val elem : ?attrs:(string * string) list -> string -> t list -> t
val text : string -> t

val tag : t -> string option
val attr : t -> string -> string option
val children : t -> t list

(** Child elements with a given tag. *)
val children_named : t -> string -> t list

(** All descendant-or-self elements with a given tag, document order. *)
val descendants_named : t -> string -> t list

(** Concatenated text content of the node (the XPath string value). *)
val text_content : t -> string

(** Deep structural equality; attribute order is irrelevant. *)
val equal : t -> t -> bool

val compare : t -> t -> int

(** Serialization with entity escaping; [canonical] sorts attributes so equal
    nodes print identically. *)
val to_string : ?canonical:bool -> t -> string

(** Multi-line indented rendering for humans. *)
val to_pretty_string : t -> string

val pp : Format.formatter -> t -> unit
