lib/xmlkit/xml_parse.mli: Xml
