lib/xmlkit/xml.mli: Format
