lib/xmlkit/xml_parse.ml: Buffer Char List Printf String Xml
