lib/xmlkit/xpath.ml: Float List Option Printf String Xml
