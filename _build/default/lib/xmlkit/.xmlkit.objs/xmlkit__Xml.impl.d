lib/xmlkit/xml.ml: Buffer Format List Printf String
