lib/xmlkit/xpath.mli: Xml
