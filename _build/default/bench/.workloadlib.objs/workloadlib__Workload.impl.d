bench/workload.ml: Array Buffer Database Float List Printf Relkit Schema Trigview Value
