(* The Table 2 workload generator.

   Hierarchy depth d gives tables t1 (root) … td (leaf); each child table
   has a foreign key [parent] referencing its parent's primary key, exactly
   as §6.1 describes.  The XML view nests children inside parents, and the
   count(…) >= 2 predicate sits on the lowest level.  Triggers are placed on
   the top-level element with a selection constant on its name attribute;
   [num_satisfied] of them carry the name of the element the benchmark
   updates. *)

open Relkit

type params = {
  depth : int;  (* 2..5 *)
  leaf_tuples : int;
  fanout : int;  (* leaf tuples per top-level XML element *)
  num_triggers : int;
  num_satisfied : int;
}

(* Table 2 defaults (bold entries). *)
let paper_defaults =
  { depth = 3; leaf_tuples = 128_000; fanout = 64; num_triggers = 10_000; num_satisfied = 20 }

(* Scaled-down defaults for quick runs. *)
let quick_defaults =
  { depth = 3; leaf_tuples = 16_000; fanout = 64; num_triggers = 1_000; num_satisfied = 20 }

let table_name i = Printf.sprintf "t%d" i
let elem_name i = Printf.sprintf "e%d" i

(* per-level child fanout so that the product over the d-1 nesting levels is
   the requested leaf fanout *)
let per_level_fanout p =
  if p.depth <= 1 then 1
  else
    let f = float_of_int p.fanout ** (1.0 /. float_of_int (p.depth - 1)) in
    max 1 (int_of_float (Float.round f))

let schemas p =
  List.init p.depth (fun i ->
      let level = i + 1 in
      let base = [ ("id", Schema.TString) ] in
      let cols =
        if level = 1 then base @ [ ("name", Schema.TString) ]
        else if level = p.depth then
          base @ [ ("parent", Schema.TString); ("price", Schema.TFloat) ]
        else base @ [ ("parent", Schema.TString) ]
      in
      let fks =
        if level = 1 then []
        else
          [ { Schema.fk_columns = [ "parent" ];
              fk_table = table_name (level - 1);
              fk_ref_columns = [ "id" ];
            }
          ]
      in
      Schema.make ~name:(table_name level) ~columns:cols ~primary_key:[ "id" ]
        ~foreign_keys:fks ())

(* Deterministic pseudo-random prices so runs are reproducible. *)
let price_of i = float_of_int (50 + ((i * 7919) mod 300))

type built = {
  db : Database.t;
  depth : int;
  view_text : string;
  top_names : string array;  (* name attribute of each top-level element *)
  leaf_ids_of_top : string array array;  (* leaf ids under each top element *)
}

let build p =
  let db = Database.create () in
  List.iter (Database.create_table db) (schemas p);
  let f = per_level_fanout p in
  let n_top = max 1 (p.leaf_tuples / p.fanout) in
  (* level sizes: n_top, n_top*f, ..., leaf level gets the exact remainder *)
  let sizes =
    Array.init p.depth (fun i ->
        if i = 0 then n_top
        else if i = p.depth - 1 then n_top * int_of_float (float_of_int f ** float_of_int i)
        else n_top * int_of_float (float_of_int f ** float_of_int i))
  in
  (* root *)
  let top_names = Array.init n_top (fun i -> Printf.sprintf "name%d" i) in
  Database.load_rows db ~table:(table_name 1)
    (List.init n_top (fun i ->
         [| Value.String (Printf.sprintf "t1r%d" i); Value.String top_names.(i) |]));
  (* intermediate + leaf levels; parents assigned contiguously *)
  for level = 2 to p.depth do
    let n = sizes.(level - 1) in
    let n_parent = sizes.(level - 2) in
    let rows =
      List.init n (fun i ->
          let id = Value.String (Printf.sprintf "t%dr%d" level i) in
          let parent =
            Value.String (Printf.sprintf "t%dr%d" (level - 1) (i * n_parent / n))
          in
          if level = p.depth then [| id; parent; Value.Float (price_of i) |]
          else [| id; parent |])
    in
    Database.load_rows db ~table:(table_name level) rows;
    Database.create_index db ~table:(table_name level) ~column:"parent"
  done;
  Database.create_index db ~table:(table_name 1) ~column:"name";
  (* leaves under each top element, for targeted updates *)
  let n_leaf = sizes.(p.depth - 1) in
  let leaf_ids_of_top =
    Array.init n_top (fun t ->
        let per_top = n_leaf / n_top in
        Array.init per_top (fun j -> Printf.sprintf "t%dr%d" p.depth ((t * per_top) + j)))
  in
  (* the view: nested FLWORs, count predicate on the lowest level *)
  let buf = Buffer.create 512 in
  Buffer.add_string buf "<doc>{";
  let rec emit level =
    let v = Printf.sprintf "x%d" level in
    if level = 1 then begin
      Buffer.add_string buf
        (Printf.sprintf "for $%s in view(\"default\")/%s/row " v (table_name 1));
      Buffer.add_string buf
        (Printf.sprintf "let $c2 := view(\"default\")/%s/row[./parent = $%s/id] "
           (table_name 2) v);
      if p.depth = 2 then Buffer.add_string buf "where count($c2) >= 2 ";
      Buffer.add_string buf
        (Printf.sprintf "return <%s name=\"{$%s/name}\">{" (elem_name 1) v);
      emit 2;
      Buffer.add_string buf (Printf.sprintf "}</%s>" (elem_name 1))
    end
    else if level = p.depth then
      Buffer.add_string buf
        (Printf.sprintf "for $%s in $c%d return <%s><id>{$%s/id}</id><price>{$%s/price}</price></%s>"
           v level (elem_name level) v v (elem_name level))
    else begin
      Buffer.add_string buf (Printf.sprintf "for $%s in $c%d " v level);
      Buffer.add_string buf
        (Printf.sprintf "let $c%d := view(\"default\")/%s/row[./parent = $%s/id] "
           (level + 1) (table_name (level + 1)) v);
      if level = p.depth - 1 then
        Buffer.add_string buf (Printf.sprintf "where count($c%d) >= 2 " (level + 1));
      Buffer.add_string buf
        (Printf.sprintf "return <%s id=\"{$%s/id}\">{" (elem_name level) v);
      emit (level + 1);
      Buffer.add_string buf (Printf.sprintf "}</%s>" (elem_name level))
    end
  in
  emit 1;
  Buffer.add_string buf "}</doc>";
  { db; depth = p.depth; view_text = Buffer.contents buf; top_names; leaf_ids_of_top }

(* Install [num_triggers] structurally similar triggers; [num_satisfied] of
   them match the target element's name, the rest carry distinct other
   constants. *)
let install_triggers mgr p ~target_name =
  (* Every trigger shares the same structure and differs only in its two
     selection constants.  Satisfied triggers carry the target element's name
     plus a distinct (vacuously true) count threshold, so each one
     contributes its own constants-table row — the number of computed
     (OLD_NODE, NEW_NODE) pairs then grows with the number of satisfied
     triggers, as in the paper's Figure 24. *)
  let text i const threshold =
    Printf.sprintf
      "CREATE TRIGGER bench%d AFTER UPDATE ON view('doc')/%s WHERE NEW_NODE/@name = '%s' and count(NEW_NODE/%s) >= %d DO record(NEW_NODE)"
      i (elem_name 1) const (elem_name 2) threshold
  in
  for i = 0 to p.num_triggers - 1 do
    if i < p.num_satisfied then
      Trigview.Runtime.create_trigger mgr (text i target_name (-i))
    else
      Trigview.Runtime.create_trigger mgr (text i (Printf.sprintf "nomatch%d" i) 1)
  done

(* One benchmark statement: update a leaf price under the target element. *)
let update_leaf built ~top_index ~step =
  let leaves = built.leaf_ids_of_top.(top_index) in
  let leaf = leaves.(step mod Array.length leaves) in
  let leaf_table = table_name built.depth in
  ignore
    (Database.update_pk built.db ~table:leaf_table
       ~pk:[ Value.String leaf ]
       ~set:(fun row ->
         let row = Array.copy row in
         let slot = Array.length row - 1 in
         row.(slot) <- Value.add row.(slot) (Value.Float 1.0);
         row))
