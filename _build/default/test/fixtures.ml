(* Shared fixtures: the paper's running example — the product/vendor database
   of Figure 2 and hand-built XQGM graphs for the catalog view (Figure 5) and
   the min-price view (Figure 21).  Used by the xqgm and trigview suites; the
   xquery suite checks that the compiler reproduces these graphs'
   semantics. *)

open Relkit

let v_int i = Value.Int i
let v_str s = Value.String s
let v_float f = Value.Float f

let product_schema =
  Schema.make ~name:"product"
    ~columns:[ ("pid", Schema.TString); ("pname", Schema.TString); ("mfr", Schema.TString) ]
    ~primary_key:[ "pid" ] ()

let vendor_schema =
  Schema.make ~name:"vendor"
    ~foreign_keys:
      [ { Schema.fk_columns = [ "pid" ]; fk_table = "product"; fk_ref_columns = [ "pid" ] } ]
    ~columns:[ ("vid", Schema.TString); ("pid", Schema.TString); ("price", Schema.TFloat) ]
    ~primary_key:[ "vid"; "pid" ] ()

(* The Figure 2 database. *)
let mk_db () =
  let db = Database.create () in
  Database.create_table db product_schema;
  Database.create_table db vendor_schema;
  Database.create_index db ~table:"vendor" ~column:"pid";
  Database.create_index db ~table:"product" ~column:"pname";
  Database.insert_rows db ~table:"product"
    [ [| v_str "P1"; v_str "CRT 15"; v_str "Samsung" |];
      [| v_str "P2"; v_str "LCD 19"; v_str "Samsung" |];
      [| v_str "P3"; v_str "CRT 15"; v_str "Viewsonic" |];
    ];
  Database.insert_rows db ~table:"vendor"
    [ [| v_str "Amazon"; v_str "P1"; v_float 100.0 |];
      [| v_str "Bestbuy"; v_str "P1"; v_float 120.0 |];
      [| v_str "Circuitcity"; v_str "P1"; v_float 150.0 |];
      [| v_str "Buy.com"; v_str "P2"; v_float 200.0 |];
      [| v_str "Bestbuy"; v_str "P2"; v_float 180.0 |];
      [| v_str "Bestbuy"; v_str "P3"; v_float 120.0 |];
      [| v_str "Circuitcity"; v_str "P3"; v_float 140.0 |];
    ];
  db

let schema_of db name = Table.schema (Database.get_table db name)

open Xqgm

(* Boxes 1-4 of Figure 5: product x vendor with a <vendor> element per pair. *)
let vendor_elem_level () =
  (* Figure 5 box 1 scans only pid and pname; mfr never enters the view. *)
  let product = Op.table "product" [ ("pid", "pid"); ("pname", "pname") ] in
  let vendor =
    Op.table "vendor" [ ("vid", "vid"); ("pid", "v_pid"); ("price", "price") ]
  in
  let joined = Op.join ~pred:(Expr.eq (Expr.Col "pid") (Expr.Col "v_pid")) product vendor in
  Op.project
    ~defs:
      [ ("pid", Expr.Col "pid");
        ("pname", Expr.Col "pname");
        ("vid", Expr.Col "vid");
        ("v_pid", Expr.Col "v_pid");
        ( "vendor_elem",
          Expr.Elem
            { tag = "vendor";
              attrs = [];
              content =
                [ Expr.Elem { tag = "pid"; attrs = []; content = [ Expr.Col "v_pid" ] };
                  Expr.Elem { tag = "vid"; attrs = []; content = [ Expr.Col "vid" ] };
                  Expr.Elem { tag = "price"; attrs = []; content = [ Expr.Col "price" ] };
                ];
            } );
      ]
    joined

(* Boxes 5-7 of Figure 5: group vendors per product name, keep names with >= 2
   vendors, and build the <product> elements.  This is also the Path graph of
   Figure 5A (the trigger monitors /product). *)
let product_level () =
  let grouped =
    Op.group_by ~keys:[ "pname" ]
      ~aggs:[ ("vendors", Expr.Xml_frag (Expr.Col "vendor_elem")); ("cnt", Expr.Count) ]
      ~order:[ "vid"; "v_pid" ] (vendor_elem_level ())
  in
  let filtered =
    Op.select ~pred:(Expr.Binop (Relkit.Ra.Ge, Expr.Col "cnt", Expr.Const (v_int 2))) grouped
  in
  Op.project
    ~defs:
      [ ("pname", Expr.Col "pname");
        ( "product_elem",
          Expr.Elem
            { tag = "product";
              attrs = [ ("name", Expr.Col "pname") ];
              content = [ Expr.Col "vendors" ];
            } );
      ]
    filtered

(* Boxes 8-9: the whole catalog document. *)
let catalog_view () =
  let products =
    Op.group_by ~keys:[] ~aggs:[ ("products", Expr.Xml_frag (Expr.Col "product_elem")) ]
      ~order:[ "pname" ] (product_level ())
  in
  Op.project
    ~defs:
      [ ( "catalog_elem",
          Expr.Elem { tag = "catalog"; attrs = []; content = [ Expr.Col "products" ] } );
      ]
    products

(* Figure 21: the min-price variant.  The hidden [minp] pass-through is what
   lets the Agg-only optimization compare the aggregate relationally. *)
let minprice_product_level () =
  (* Figure 21 box 4': pass the raw price instead of building <vendor>. *)
  let product = Op.table "product" [ ("pid", "pid"); ("pname", "pname") ] in
  let vendor = Op.table "vendor" [ ("vid", "vid"); ("pid", "v_pid"); ("price", "price") ] in
  let joined = Op.join ~pred:(Expr.eq (Expr.Col "pid") (Expr.Col "v_pid")) product vendor in
  let grouped =
    Op.group_by ~keys:[ "pname" ]
      ~aggs:[ ("minp", Expr.Min (Expr.Col "price")); ("cnt", Expr.Count) ]
      joined
  in
  let filtered =
    Op.select ~pred:(Expr.Binop (Relkit.Ra.Ge, Expr.Col "cnt", Expr.Const (v_int 2))) grouped
  in
  Op.project
    ~defs:
      [ ("pname", Expr.Col "pname");
        ("minp", Expr.Col "minp");
        ( "product_elem",
          Expr.Elem
            { tag = "product";
              attrs = [ ("name", Expr.Col "pname") ];
              content = [ Expr.Elem { tag = "min"; attrs = []; content = [ Expr.Col "minp" ] } ];
            } );
      ]
    filtered

(* DML helpers used across suites. *)

let update_vendor_price db ~vid ~pid ~price =
  ignore
    (Database.update_rows db ~table:"vendor"
       ~where:(fun row -> Value.equal row.(0) (v_str vid) && Value.equal row.(1) (v_str pid))
       ~set:(fun row -> [| row.(0); row.(1); v_float price |]))

let insert_vendor db ~vid ~pid ~price =
  Database.insert_rows db ~table:"vendor" [ [| v_str vid; v_str pid; v_float price |] ]

let delete_vendor db ~vid ~pid =
  ignore (Database.delete_pk db ~table:"vendor" ~pk:[ v_str vid; v_str pid ])
