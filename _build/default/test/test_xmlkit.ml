(* Tests for the XML node model, parser and XPath-subset evaluator. *)

open Xmlkit

let catalog =
  Xml.elem "catalog"
    [ Xml.elem ~attrs:[ ("name", "CRT 15") ] "product"
        [ Xml.elem "vendor"
            [ Xml.elem "pid" [ Xml.text "P1" ];
              Xml.elem "vid" [ Xml.text "Amazon" ];
              Xml.elem "price" [ Xml.text "100.00" ];
            ];
          Xml.elem "vendor"
            [ Xml.elem "pid" [ Xml.text "P1" ];
              Xml.elem "vid" [ Xml.text "Bestbuy" ];
              Xml.elem "price" [ Xml.text "120.00" ];
            ];
        ];
      Xml.elem ~attrs:[ ("name", "LCD 19") ] "product"
        [ Xml.elem "vendor"
            [ Xml.elem "pid" [ Xml.text "P2" ];
              Xml.elem "vid" [ Xml.text "Buy.com" ];
              Xml.elem "price" [ Xml.text "200.00" ];
            ];
        ];
    ]

(* --- Xml --- *)

let test_accessors () =
  Alcotest.(check (option string)) "tag" (Some "catalog") (Xml.tag catalog);
  Alcotest.(check int) "2 products" 2 (List.length (Xml.children_named catalog "product"));
  Alcotest.(check int) "3 vendors anywhere" 3
    (List.length (Xml.descendants_named catalog "vendor"));
  let p = List.hd (Xml.children_named catalog "product") in
  Alcotest.(check (option string)) "attr" (Some "CRT 15") (Xml.attr p "name")

let test_equal_ignores_attr_order () =
  let a = Xml.elem ~attrs:[ ("x", "1"); ("y", "2") ] "e" [ Xml.text "t" ] in
  let b = Xml.elem ~attrs:[ ("y", "2"); ("x", "1") ] "e" [ Xml.text "t" ] in
  Alcotest.(check bool) "equal" true (Xml.equal a b);
  let c = Xml.elem ~attrs:[ ("x", "1") ] "e" [ Xml.text "t" ] in
  Alcotest.(check bool) "unequal" false (Xml.equal a c)

let test_equal_child_order_matters () =
  let a = Xml.elem "e" [ Xml.elem "x" []; Xml.elem "y" [] ] in
  let b = Xml.elem "e" [ Xml.elem "y" []; Xml.elem "x" [] ] in
  Alcotest.(check bool) "order matters" false (Xml.equal a b)

let test_serialize_escapes () =
  let n = Xml.elem ~attrs:[ ("q", "a\"b&c") ] "e" [ Xml.text "x<y & z" ] in
  Alcotest.(check string) "escaped"
    "<e q=\"a&quot;b&amp;c\">x&lt;y &amp; z</e>" (Xml.to_string n)

let test_text_content () =
  let p = List.hd (Xml.children_named catalog "product") in
  Alcotest.(check string) "concat" "P1Amazon100.00P1Bestbuy120.00" (Xml.text_content p)

(* --- Xml_parse --- *)

let test_parse_roundtrip () =
  let s = Xml.to_string ~canonical:true catalog in
  let parsed = Xml_parse.parse s in
  Alcotest.(check bool) "roundtrip" true (Xml.equal catalog parsed)

let test_parse_pretty_roundtrip () =
  let s = Xml.to_pretty_string catalog in
  let parsed = Xml_parse.parse s in
  Alcotest.(check bool) "pretty roundtrip" true (Xml.equal catalog parsed)

let test_parse_entities_and_selfclose () =
  let n = Xml_parse.parse "<a x='1 &amp; 2'><b/>t &lt; u<!-- c --></a>" in
  Alcotest.(check (option string)) "attr" (Some "1 & 2") (Xml.attr n "x");
  Alcotest.(check int) "children" 2 (List.length (Xml.children n));
  Alcotest.(check string) "text" "t < u" (Xml.text_content n)

let test_parse_rejects_mismatched () =
  Alcotest.(check bool) "mismatch" true (Xml_parse.parse_opt "<a><b></a></b>" = None);
  Alcotest.(check bool) "trailing" true (Xml_parse.parse_opt "<a/><b/>" = None);
  Alcotest.(check bool) "unterminated" true (Xml_parse.parse_opt "<a>" = None)

let test_parse_declaration () =
  let n = Xml_parse.parse "<?xml version=\"1.0\"?>\n<a/>" in
  Alcotest.(check (option string)) "tag" (Some "a") (Xml.tag n)

(* --- Xpath --- *)

let sel = Xpath.select_strings

let test_xpath_child_steps () =
  Alcotest.(check (list string)) "vids"
    [ "Amazon"; "Bestbuy"; "Buy.com" ]
    (sel catalog "/product/vendor/vid")

let test_xpath_descendant () =
  Alcotest.(check (list string)) "prices anywhere"
    [ "100.00"; "120.00"; "200.00" ] (sel catalog "//price")

let test_xpath_attribute () =
  Alcotest.(check (list string)) "names" [ "CRT 15"; "LCD 19" ] (sel catalog "/product/@name")

let test_xpath_attr_predicate () =
  Alcotest.(check (list string)) "CRT vendors" [ "Amazon"; "Bestbuy" ]
    (sel catalog "/product[@name='CRT 15']/vendor/vid")

let test_xpath_numeric_predicate () =
  Alcotest.(check (list string)) "cheap vendors" [ "Amazon" ]
    (sel catalog "//vendor[price < 120]/vid")

let test_xpath_position_predicate () =
  Alcotest.(check (list string)) "second vendor" [ "Bestbuy" ]
    (sel catalog "/product[@name='CRT 15']/vendor[2]/vid")

let test_xpath_exists_predicate () =
  Alcotest.(check int) "products with vendors" 2
    (List.length (Xpath.select catalog "/product[vendor]"))

let test_xpath_and_or () =
  Alcotest.(check (list string)) "and" [ "Bestbuy" ]
    (sel catalog "//vendor[price >= 110 and price <= 150]/vid");
  Alcotest.(check (list string)) "or" [ "Amazon"; "Buy.com" ]
    (sel catalog "//vendor[price < 110 or price > 150]/vid")

let test_xpath_not () =
  Alcotest.(check (list string)) "not" [ "Buy.com" ]
    (sel catalog "//vendor[not(pid = 'P1')]/vid")

let test_xpath_wildcard_and_self () =
  Alcotest.(check int) "all product children" 3
    (List.length (Xpath.select catalog "/product/*"));
  Alcotest.(check (list string)) "self step" [ "Amazon" ]
    (sel catalog "//vendor[./price = 100]/vid")

let test_xpath_existential_nodeset_cmp () =
  (* products where *some* vendor's pid equals P2 *)
  Alcotest.(check (list string)) "existential" [ "LCD 19" ]
    (List.filter_map
       (fun n -> Xml.attr n "name")
       (Xpath.select catalog "/product[vendor/pid = 'P2']"))

let test_xpath_parse_errors () =
  let bad s =
    match Xpath.parse s with
    | exception Xpath.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "empty" true (bad "");
  Alcotest.(check bool) "unclosed pred" true (bad "/a[b");
  Alcotest.(check bool) "trailing" true (bad "/a]")

let test_xpath_print_roundtrip () =
  List.iter
    (fun s ->
      let p = Xpath.parse s in
      let printed = Xpath.path_to_string p in
      let p' = Xpath.parse printed in
      Alcotest.(check string) ("roundtrip " ^ s) printed (Xpath.path_to_string p'))
    [ "/catalog/product"; "//vendor[price < 120]/vid"; "/product[@name='CRT 15']";
      "/a/*[2]"; "//v[not(x = 'y')]" ]

(* --- property tests --- *)

let xml_gen =
  let open QCheck.Gen in
  let tag_gen = oneofl [ "a"; "b"; "c" ] in
  let text_gen = map Xml.text (oneofl [ "x"; "y & z"; "<q>"; "" ]) in
  let attrs_gen = oneofl [ []; [ ("k", "v") ]; [ ("k", "v'w\"") ] ] in
  fix
    (fun self depth ->
      if depth = 0 then text_gen
      else
        frequency
          [ (1, text_gen);
            ( 3,
              map3
                (fun tag attrs children -> Xml.elem ~attrs tag children)
                tag_gen attrs_gen
                (list_size (int_range 0 3) (self (depth - 1))) );
          ])
    3

let prop_serialize_parse_roundtrip =
  QCheck.Test.make ~name:"to_string |> parse = id (modulo ws text)" ~count:200
    (QCheck.make xml_gen) (fun node ->
      (* Ensure the root is an element, and avoid whitespace-only text children
         which the parser intentionally drops. *)
      let rec strip = function
        | Xml.Text s -> Xml.Text (if String.trim s = "" then "_" else s)
        | Xml.Element { tag; attrs; children } ->
          let children = List.map strip children in
          (* Adjacent text children merge on reparse; merge them up front. *)
          let children =
            List.fold_right
              (fun c acc ->
                match c, acc with
                | Xml.Text a, Xml.Text b :: rest -> Xml.Text (a ^ b) :: rest
                | c, acc -> c :: acc)
              children []
          in
          Xml.Element { tag; attrs; children }
      in
      let node =
        match strip node with Xml.Text _ as t -> Xml.elem "root" [ t ] | e -> e
      in
      match Xml_parse.parse_opt (Xml.to_string node) with
      | Some parsed -> Xml.equal node parsed
      | None -> false)

let prop_compare_total_order =
  QCheck.Test.make ~name:"compare is antisymmetric and reflexive" ~count:200
    (QCheck.make (QCheck.Gen.pair xml_gen xml_gen)) (fun (a, b) ->
      Xml.compare a a = 0
      && Xml.compare b b = 0
      && compare (Xml.compare a b) 0 = compare 0 (Xml.compare b a))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_serialize_parse_roundtrip; prop_compare_total_order ]

let () =
  Alcotest.run "xmlkit"
    [ ( "xml",
        [ Alcotest.test_case "accessors" `Quick test_accessors;
          Alcotest.test_case "equality ignores attr order" `Quick test_equal_ignores_attr_order;
          Alcotest.test_case "child order matters" `Quick test_equal_child_order_matters;
          Alcotest.test_case "escaping" `Quick test_serialize_escapes;
          Alcotest.test_case "text content" `Quick test_text_content;
        ] );
      ( "xml_parse",
        [ Alcotest.test_case "roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "pretty roundtrip" `Quick test_parse_pretty_roundtrip;
          Alcotest.test_case "entities + self-close" `Quick test_parse_entities_and_selfclose;
          Alcotest.test_case "rejects malformed" `Quick test_parse_rejects_mismatched;
          Alcotest.test_case "xml declaration" `Quick test_parse_declaration;
        ] );
      ( "xpath",
        [ Alcotest.test_case "child steps" `Quick test_xpath_child_steps;
          Alcotest.test_case "descendant" `Quick test_xpath_descendant;
          Alcotest.test_case "attribute" `Quick test_xpath_attribute;
          Alcotest.test_case "attr predicate" `Quick test_xpath_attr_predicate;
          Alcotest.test_case "numeric predicate" `Quick test_xpath_numeric_predicate;
          Alcotest.test_case "position predicate" `Quick test_xpath_position_predicate;
          Alcotest.test_case "exists predicate" `Quick test_xpath_exists_predicate;
          Alcotest.test_case "and/or" `Quick test_xpath_and_or;
          Alcotest.test_case "not" `Quick test_xpath_not;
          Alcotest.test_case "wildcard + self" `Quick test_xpath_wildcard_and_self;
          Alcotest.test_case "existential node-set compare" `Quick
            test_xpath_existential_nodeset_cmp;
          Alcotest.test_case "parse errors" `Quick test_xpath_parse_errors;
          Alcotest.test_case "print roundtrip" `Quick test_xpath_print_roundtrip;
        ] );
      ("properties", qcheck_tests);
    ]
