(* Edge cases across the stack: parser corners, multi-fragment views, scalar
   lets, multiple views per manager, and key-changing updates. *)

open Relkit

let schema_of db name = Table.schema (Database.get_table db name)

(* --- xquery parser corners --- *)

let test_parser_literals_and_ops () =
  let p = Xquery.Parser.parse_expr in
  (match p "'it''s'" with
  | Xquery.Ast.Lit (Value.String "it's") -> ()
  | e -> Alcotest.failf "doubled quote: %s" (Xquery.Ast.expr_to_string e));
  (match p "10 div 2 mod 3" with
  | Xquery.Ast.Arith (Xquery.Ast.Mod, Xquery.Ast.Arith (Xquery.Ast.Div, _, _), _) -> ()
  | e -> Alcotest.failf "div/mod: %s" (Xquery.Ast.expr_to_string e));
  (match p "-5 + 2" with
  | Xquery.Ast.Arith (Xquery.Ast.Add, Xquery.Ast.Arith (Xquery.Ast.Sub, _, _), _) -> ()
  | e -> Alcotest.failf "unary minus: %s" (Xquery.Ast.expr_to_string e));
  match p "3.25" with
  | Xquery.Ast.Lit (Value.Float 3.25) -> ()
  | e -> Alcotest.failf "float: %s" (Xquery.Ast.expr_to_string e)

let test_parser_element_corners () =
  let p = Xquery.Parser.parse_expr in
  (match p "<a x=\"1\" y=\"{$v}\"/>" with
  | Xquery.Ast.Elem { attrs = [ (_, Xquery.Ast.Lit _); (_, Xquery.Ast.Path _) ]; content = []; _ }
    ->
    ()
  | e -> Alcotest.failf "attrs: %s" (Xquery.Ast.expr_to_string e));
  match p "<a>text {1 + 2} more<b/></a>" with
  | Xquery.Ast.Elem { content; _ } ->
    Alcotest.(check int) "mixed content" 4 (List.length content)
  | e -> Alcotest.failf "content: %s" (Xquery.Ast.expr_to_string e)

let test_parser_flwor_nested_in_paren () =
  match
    Xquery.Parser.parse_expr
      "(for $x in view(\"d\")/t/row return <r>{$x/a}</r>)"
  with
  | Xquery.Ast.Flwor _ -> ()
  | e -> Alcotest.failf "parenthesized flwor: %s" (Xquery.Ast.expr_to_string e)

(* --- multi-fragment and scalar-let views --- *)

let mk_school_db () =
  let db = Database.create () in
  Database.create_table db
    (Schema.make ~name:"school"
       ~columns:[ ("sid", Schema.TString); ("sname", Schema.TString) ]
       ~primary_key:[ "sid" ] ());
  Database.create_table db
    (Schema.make ~name:"teacher"
       ~columns:[ ("tid", Schema.TString); ("sid", Schema.TString) ]
       ~primary_key:[ "tid" ] ());
  Database.create_table db
    (Schema.make ~name:"student"
       ~columns:[ ("uid", Schema.TString); ("sid", Schema.TString); ("gpa", Schema.TFloat) ]
       ~primary_key:[ "uid" ] ());
  Database.create_index db ~table:"teacher" ~column:"sid";
  Database.create_index db ~table:"student" ~column:"sid";
  Database.insert_rows db ~table:"school"
    [ [| Value.String "S1"; Value.String "north" |];
      [| Value.String "S2"; Value.String "south" |];
    ];
  Database.insert_rows db ~table:"teacher"
    [ [| Value.String "T1"; Value.String "S1" |];
      [| Value.String "T2"; Value.String "S1" |];
      [| Value.String "T3"; Value.String "S2" |];
    ];
  Database.insert_rows db ~table:"student"
    [ [| Value.String "U1"; Value.String "S1"; Value.Float 3.2 |];
      [| Value.String "U2"; Value.String "S1"; Value.Float 3.8 |];
      [| Value.String "U3"; Value.String "S2"; Value.Float 2.9 |];
    ];
  db

(* two independent correlated sequences, both iterated under one parent *)
let two_frag_view =
  {|<schools>
    {for $s in view("default")/school/row
     let $ts := view("default")/teacher/row[./sid = $s/sid]
     let $us := view("default")/student/row[./sid = $s/sid]
     return <school name="{$s/sname}">
       <staff>{for $t in $ts return <teacher>{$t/tid}</teacher>}</staff>
       <body>{for $u in $us return <student>{$u/uid}</student>}</body>
     </school>}
  </schools>|}

let test_view_with_two_fragments () =
  let db = mk_school_db () in
  let view =
    Xquery.Compile.view_of_string ~schema_of:(schema_of db) ~name:"schools" two_frag_view
  in
  let doc = Xquery.Compile.materialize (Ra_eval.ctx_of_db db) view in
  let schools = Xmlkit.Xml.children_named doc "school" in
  Alcotest.(check int) "two schools" 2 (List.length schools);
  let north = List.hd schools in
  Alcotest.(check int) "two teachers" 2
    (List.length (Xmlkit.Xpath.select north "/staff/teacher"));
  Alcotest.(check int) "two students" 2
    (List.length (Xmlkit.Xpath.select north "/body/student"))

let test_two_fragment_triggers_end_to_end () =
  let db = mk_school_db () in
  let mgr = Trigview.Runtime.create ~strategy:Trigview.Runtime.Grouped db in
  Trigview.Runtime.define_view mgr ~name:"schools" two_frag_view;
  let log = ref [] in
  Trigview.Runtime.register_action mgr ~name:"rec" (fun fi ->
      log := fi.Trigview.Runtime.fi_event :: !log);
  Trigview.Runtime.create_trigger mgr
    "CREATE TRIGGER t AFTER UPDATE ON view('schools')/school DO rec(NEW_NODE)";
  (* a change on either branch updates the school node *)
  Database.insert_rows db ~table:"teacher"
    [ [| Value.String "T4"; Value.String "S2" |] ];
  Alcotest.(check int) "teacher branch" 1 (List.length !log);
  (* gpa is not shown by this view: updating it must NOT fire *)
  ignore
    (Database.update_pk db ~table:"student" ~pk:[ Value.String "U3" ]
       ~set:(fun r -> [| r.(0); r.(1); Value.Float 3.0 |]));
  Alcotest.(check int) "invisible column suppressed" 1 (List.length !log);
  (* a student moving schools changes both school nodes *)
  ignore
    (Database.update_pk db ~table:"student" ~pk:[ Value.String "U3" ]
       ~set:(fun r -> [| r.(0); Value.String "S1"; r.(2) |]));
  Alcotest.(check int) "student branch" 3 (List.length !log)

let test_scalar_let_and_avg () =
  let db = mk_school_db () in
  let text =
    {|<report>
      {for $s in view("default")/school/row
       let $us := view("default")/student/row[./sid = $s/sid]
       let $bar := 3
       where avg($us/gpa) >= $bar
       return <school>{$s/sname}</school>}
    </report>|}
  in
  let view = Xquery.Compile.view_of_string ~schema_of:(schema_of db) ~name:"r" text in
  let doc = Xquery.Compile.materialize (Ra_eval.ctx_of_db db) view in
  Alcotest.(check (list string)) "only north averages >= 3" [ "north" ]
    (List.map Xmlkit.Xml.text_content (Xmlkit.Xml.children_named doc "school"))

let test_exists_condition () =
  let db = mk_school_db () in
  let text =
    {|<staffed>
      {for $s in view("default")/school/row
       let $ts := view("default")/teacher/row[./sid = $s/sid]
       where exists($ts)
       return <school>{$s/sname}</school>}
    </staffed>|}
  in
  ignore (Database.delete_pk db ~table:"teacher" ~pk:[ Value.String "T3" ]);
  let view = Xquery.Compile.view_of_string ~schema_of:(schema_of db) ~name:"r" text in
  let doc = Xquery.Compile.materialize (Ra_eval.ctx_of_db db) view in
  Alcotest.(check (list string)) "south has no teachers left" [ "north" ]
    (List.map Xmlkit.Xml.text_content (Xmlkit.Xml.children_named doc "school"))

(* --- multiple views per manager --- *)

let test_two_views_one_manager () =
  let db = mk_school_db () in
  let mgr = Trigview.Runtime.create db in
  Trigview.Runtime.define_view mgr ~name:"schools" two_frag_view;
  Trigview.Runtime.define_view mgr ~name:"roster"
    {|<roster>{for $u in view("default")/student/row
               return <student id="{$u/uid}"><gpa>{$u/gpa}</gpa></student>}</roster>|};
  let log = ref [] in
  Trigview.Runtime.register_action mgr ~name:"rec" (fun fi ->
      log := fi.Trigview.Runtime.fi_trigger :: !log);
  Trigview.Runtime.create_trigger mgr
    "CREATE TRIGGER a AFTER UPDATE ON view('schools')/school DO rec(NEW_NODE)";
  Trigview.Runtime.create_trigger mgr
    "CREATE TRIGGER b AFTER UPDATE ON view('roster')/student DO rec(NEW_NODE)";
  (* gpa is visible only in the roster view *)
  ignore
    (Database.update_pk db ~table:"student" ~pk:[ Value.String "U1" ]
       ~set:(fun r -> [| r.(0); r.(1); Value.Float 3.5 |]));
  Alcotest.(check (list string)) "roster fires" [ "b" ] (List.sort compare !log);
  (* a school move is visible in the schools view *)
  ignore
    (Database.update_pk db ~table:"student" ~pk:[ Value.String "U1" ]
       ~set:(fun r -> [| r.(0); Value.String "S2"; r.(2) |]));
  Alcotest.(check (list string)) "both views have fired" [ "a"; "b" ]
    (List.sort_uniq compare !log)

(* --- key-changing updates --- *)

let test_primary_key_update () =
  (* a statement that rewrites a primary key looks like delete+insert of the
     row; the view machinery must survive it *)
  let db = mk_school_db () in
  let mgr = Trigview.Runtime.create db in
  Trigview.Runtime.define_view mgr ~name:"roster"
    {|<roster>{for $u in view("default")/student/row
               return <student id="{$u/uid}"><gpa>{$u/gpa}</gpa></student>}</roster>|};
  let log = ref [] in
  Trigview.Runtime.register_action mgr ~name:"rec" (fun fi ->
      log :=
        ( Database.string_of_event fi.Trigview.Runtime.fi_event,
          match fi.Trigview.Runtime.fi_new, fi.Trigview.Runtime.fi_old with
          | Some n, _ | None, Some n -> Option.value ~default:"?" (Xmlkit.Xml.attr n "id")
          | _ -> "?" )
        :: !log);
  List.iter
    (Trigview.Runtime.create_trigger mgr)
    [ "CREATE TRIGGER i AFTER INSERT ON view('roster')/student DO rec(NEW_NODE)";
      "CREATE TRIGGER d AFTER DELETE ON view('roster')/student DO rec(OLD_NODE)";
    ];
  ignore
    (Database.update_pk db ~table:"student" ~pk:[ Value.String "U1" ]
       ~set:(fun r -> [| Value.String "U9"; r.(1); r.(2) |]));
  Alcotest.(check (list (pair string string)))
    "key change = delete + insert at the view level"
    [ ("DELETE", "U1"); ("INSERT", "U9") ]
    (List.sort compare !log)

(* --- quantified trigger conditions through the middleware fallback --- *)

let test_quantified_trigger_condition () =
  let db = mk_school_db () in
  let mgr = Trigview.Runtime.create db in
  Trigview.Runtime.define_view mgr ~name:"roster2"
    {|<roster>{for $s in view("default")/school/row
               let $us := view("default")/student/row[./sid = $s/sid]
               where count($us) >= 1
               return <school name="{$s/sname}">
                 {for $u in $us return <student><gpa>{$u/gpa}</gpa></student>}
               </school>}</roster>|};
  let log = ref [] in
  Trigview.Runtime.register_action mgr ~name:"rec" (fun fi ->
      log := fi.Trigview.Runtime.fi_trigger :: !log);
  Trigview.Runtime.create_trigger mgr
    "CREATE TRIGGER honor AFTER UPDATE ON view('roster2')/school WHERE every $u in NEW_NODE/student satisfies $u/gpa >= 3 DO rec(NEW_NODE)";
  Trigview.Runtime.create_trigger mgr
    "CREATE TRIGGER risk AFTER UPDATE ON view('roster2')/school WHERE some $u in NEW_NODE/student satisfies $u/gpa < 3 DO rec(NEW_NODE)";
  (* north (3.2, 3.8): raising one gpa keeps every >= 3 true, some < 3 false *)
  ignore
    (Database.update_pk db ~table:"student" ~pk:[ Value.String "U1" ]
       ~set:(fun r -> [| r.(0); r.(1); Value.Float 3.4 |]));
  Alcotest.(check (list string)) "only the universal one" [ "honor" ] !log;
  log := [];
  (* south (2.9): any change keeps some < 3 true, every >= 3 false *)
  ignore
    (Database.update_pk db ~table:"student" ~pk:[ Value.String "U3" ]
       ~set:(fun r -> [| r.(0); r.(1); Value.Float 2.5 |]));
  Alcotest.(check (list string)) "only the existential one" [ "risk" ] !log

let test_fallback_validation_at_creation () =
  let db = mk_school_db () in
  let mgr = Trigview.Runtime.create db in
  Trigview.Runtime.register_action mgr ~name:"rec" (fun _ -> ());
  Trigview.Runtime.define_view mgr ~name:"roster3"
    {|<roster>{for $u in view("default")/student/row
               return <student id="{$u/uid}"><gpa>{$u/gpa}</gpa></student>}</roster>|};
  (* simple arithmetic over an exposed field compiles relationally... *)
  Trigview.Runtime.create_trigger mgr
    "CREATE TRIGGER ok AFTER UPDATE ON view('roster3')/student WHERE NEW_NODE/gpa + 1 > 4 DO rec(NEW_NODE)";
  (* ...but arithmetic over an aggregate is neither relational nor evaluable
     by the fallback: it must be rejected when the trigger is created, not
     when it first fires *)
  match
    Trigview.Runtime.create_trigger mgr
      "CREATE TRIGGER bad AFTER UPDATE ON view('roster3')/student WHERE sum(NEW_NODE/gpa) + 1 > 4 DO rec(NEW_NODE)"
  with
  | exception Trigview.Runtime.Error _ -> ()
  | () -> Alcotest.fail "expected creation-time rejection"

(* --- relkit odds and ends --- *)

let test_value_edges () =
  Alcotest.(check bool) "mod" true (Value.equal (Value.modulo (Value.Int 7) (Value.Int 3)) (Value.Int 1));
  Alcotest.(check bool) "neg" true (Value.equal (Value.neg (Value.Float 2.5)) (Value.Float (-2.5)));
  Alcotest.(check string) "bool literal" "TRUE" (Value.to_sql_literal (Value.Bool true));
  Alcotest.check_raises "neg of string" (Invalid_argument "Value.neg: not numeric") (fun () ->
      ignore (Value.neg (Value.String "x")))

let test_sql_order_by_multiple () =
  let db = mk_school_db () in
  let rel =
    match Sql.exec db "SELECT sid, uid FROM student ORDER BY sid DESC, uid ASC" with
    | Sql.Rows r -> r
    | _ -> Alcotest.fail "rows"
  in
  let firsts = List.map (fun r -> Value.to_string r.(0)) rel.Ra_eval.rows in
  Alcotest.(check (list string)) "sid desc" [ "S2"; "S1"; "S1" ] firsts

let test_sql_projection_arith () =
  let db = mk_school_db () in
  let rel =
    match Sql.exec db "SELECT uid, gpa * 10 AS scaled FROM student WHERE uid = 'U2'" with
    | Sql.Rows r -> r
    | _ -> Alcotest.fail "rows"
  in
  Alcotest.(check string) "scaled" "38.0"
    (Value.to_string (List.hd rel.Ra_eval.rows).(1))

let () =
  Alcotest.run "edges"
    [ ( "xquery parser",
        [ Alcotest.test_case "literals and operators" `Quick test_parser_literals_and_ops;
          Alcotest.test_case "element corners" `Quick test_parser_element_corners;
          Alcotest.test_case "parenthesized flwor" `Quick test_parser_flwor_nested_in_paren;
        ] );
      ( "views",
        [ Alcotest.test_case "two fragments" `Quick test_view_with_two_fragments;
          Alcotest.test_case "two fragments + triggers" `Quick
            test_two_fragment_triggers_end_to_end;
          Alcotest.test_case "scalar let + avg" `Quick test_scalar_let_and_avg;
          Alcotest.test_case "exists condition" `Quick test_exists_condition;
        ] );
      ( "runtime",
        [ Alcotest.test_case "two views, one manager" `Quick test_two_views_one_manager;
          Alcotest.test_case "primary-key update" `Quick test_primary_key_update;
          Alcotest.test_case "quantified conditions" `Quick test_quantified_trigger_condition;
          Alcotest.test_case "fallback validated at creation" `Quick
            test_fallback_validation_at_creation;
        ] );
      ( "relkit",
        [ Alcotest.test_case "value edges" `Quick test_value_edges;
          Alcotest.test_case "sql order by multiple" `Quick test_sql_order_by_multiple;
          Alcotest.test_case "sql arithmetic projection" `Quick test_sql_projection_arith;
        ] );
    ]
