test/test_relkit.mli:
