test/test_xqgm.ml: Alcotest Array Database Eval Expr Fixtures Injective Keys List Op Print QCheck QCheck_alcotest Ra_eval Relkit Result Schema String Table Value Xmlkit Xqgm Xval
