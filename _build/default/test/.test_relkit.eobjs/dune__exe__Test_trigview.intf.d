test/test_trigview.mli:
