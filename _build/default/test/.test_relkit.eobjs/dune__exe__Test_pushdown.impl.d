test/test_pushdown.ml: Alcotest Array Database Eval Expr Fixtures List Op Option Printf QCheck QCheck_alcotest Ra Ra_eval Ra_opt Relkit String Table Trigview Value Xqgm
