test/fixtures.ml: Array Database Expr Op Relkit Schema Table Value Xqgm
