test/test_pushdown.mli:
