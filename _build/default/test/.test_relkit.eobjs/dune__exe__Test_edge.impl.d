test/test_edge.ml: Alcotest Array Database List Option Ra_eval Relkit Schema Sql Table Trigview Value Xmlkit Xquery
