test/test_xmlkit.mli:
