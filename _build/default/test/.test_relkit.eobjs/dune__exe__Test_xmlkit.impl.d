test/test_xmlkit.ml: Alcotest List QCheck QCheck_alcotest String Xml Xml_parse Xmlkit Xpath
