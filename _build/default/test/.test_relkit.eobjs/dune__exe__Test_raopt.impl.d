test/test_raopt.ml: Alcotest Array Database List Option Printf QCheck QCheck_alcotest Ra Ra_eval Ra_opt Relkit Schema Table Value
