test/test_relkit.ml: Alcotest Array Database List Printf QCheck QCheck_alcotest Ra Ra_eval Relkit Result Schema Sql_print String Table Value
