test/test_trigview.ml: Alcotest Array Database Eval Expr Fixtures Injective List Op Option Printf QCheck QCheck_alcotest Ra_eval Relkit Table Trigview Value Xmlkit Xqgm Xval
