test/test_sql.ml: Alcotest Array Database List Ra_eval Relkit Sql Table Value
