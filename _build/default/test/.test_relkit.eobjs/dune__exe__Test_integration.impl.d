test/test_integration.ml: Alcotest Array Database List Option Printf QCheck QCheck_alcotest Ra_eval Relkit Schema String Table Trigview Value Xmlkit Xquery
