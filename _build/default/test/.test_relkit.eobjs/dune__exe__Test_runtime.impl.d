test/test_runtime.ml: Alcotest Array Database Fixtures List Option Printf Relkit Schema String Trigview Value Xmlkit
