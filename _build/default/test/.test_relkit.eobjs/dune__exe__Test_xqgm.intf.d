test/test_xqgm.mli:
