test/test_xquery.ml: Alcotest Database Eval Expr Fixtures Keys List Option Ra_eval Relkit Result String Trigview Xmlkit Xqgm Xquery Xval
