test/test_raopt.mli:
