(* trigview_cli: an interactive shell over the paper's product/vendor catalog.

   Starts with the Figure 2 database and the Figure 3 catalog view published;
   lets you create XML triggers, run DML, and inspect the materialized view,
   the generated SQL triggers and the runtime statistics.

     dune exec bin/trigview_cli.exe -- --strategy grouped-agg
     dune exec bin/trigview_cli.exe -- --script demo.txt *)

open Relkit
module Runtime = Trigview.Runtime
module Hub = Subscribe
module Server = Subscribe.Server
module Api = Httpfront.Api

let catalog_view =
  {|<catalog>
    {for $prodname in distinct(view("default")/product/row/pname)
     let $products := view("default")/product/row[./pname = $prodname]
     let $vendors := view("default")/vendor/row[./pid = $products/pid]
     where count($vendors) >= 2
     return <product name="{$prodname}">
       {for $vendor in $vendors return <vendor>{$vendor/*}</vendor>}
     </product>}
  </catalog>|}

let make_db () =
  let db = Database.create () in
  Database.create_table db
    (Schema.make ~name:"product"
       ~columns:[ ("pid", Schema.TString); ("pname", Schema.TString); ("mfr", Schema.TString) ]
       ~primary_key:[ "pid" ] ());
  Database.create_table db
    (Schema.make ~name:"vendor"
       ~columns:[ ("vid", Schema.TString); ("pid", Schema.TString); ("price", Schema.TFloat) ]
       ~primary_key:[ "vid"; "pid" ]
       ~foreign_keys:
         [ { Schema.fk_columns = [ "pid" ]; fk_table = "product"; fk_ref_columns = [ "pid" ] } ]
       ());
  Database.create_index db ~table:"vendor" ~column:"pid";
  Database.create_index db ~table:"product" ~column:"pname";
  Database.insert_rows db ~table:"product"
    [ [| Value.String "P1"; Value.String "CRT 15"; Value.String "Samsung" |];
      [| Value.String "P2"; Value.String "LCD 19"; Value.String "Samsung" |];
      [| Value.String "P3"; Value.String "CRT 15"; Value.String "Viewsonic" |];
    ];
  Database.insert_rows db ~table:"vendor"
    [ [| Value.String "Amazon"; Value.String "P1"; Value.Float 100.0 |];
      [| Value.String "Bestbuy"; Value.String "P1"; Value.Float 120.0 |];
      [| Value.String "Circuitcity"; Value.String "P1"; Value.Float 150.0 |];
      [| Value.String "Buy.com"; Value.String "P2"; Value.Float 200.0 |];
      [| Value.String "Bestbuy"; Value.String "P2"; Value.Float 180.0 |];
      [| Value.String "Bestbuy"; Value.String "P3"; Value.Float 120.0 |];
      [| Value.String "Circuitcity"; Value.String "P3"; Value.Float 140.0 |];
    ];
  db

let help_text =
  {|commands:
  help                        this message
  SELECT/INSERT/UPDATE/... .  run a SQL statement against the database
  view                        print the materialized catalog view
  sql                         show the generated SQL triggers
  triggers                    list installed XML triggers
  trigger CREATE TRIGGER ...  install an XML trigger (action: notify)
  drop NAME                   drop an XML trigger
  price VID PID AMOUNT        update a vendor's price
  add VID PID AMOUNT          add a vendor offer
  remove VID PID              remove a vendor offer
  product PID NAME MFR        add a product
  stats                       runtime statistics: counters, scan rows, probe
                              counts, latency histograms, durability timings
  stats-json                  the same as one JSON object
  explain                     annotated plan per trigger group: compiled vs
                              interpreted, join choices, last-run cardinalities
  explain-json                the same as JSON
  analyze                     workload-observatory report: per trigger the
                              observed windowed cost under the current
                              strategy, the modeled cost of each alternative,
                              and a recommendation (incl. fragments worth
                              materializing)
  analyze-json                the same as one JSON object
  tune [NAME|all]             apply the advisor's recommendations by re-arming
                              triggers live (default: all); logged so recovery
                              replays the transition
  trace on|off                enable/disable span tracing (also: --trace)
  trace                       dump the recorded span timeline
  trace json                  dump the recorded spans as JSON
  trace chrome                dump spans + audit instants as Chrome trace-event
                              JSON (load in Perfetto / chrome://tracing)
  trace clear                 drop recorded spans
  audit on|off                enable/disable firing provenance (also: --audit)
  audit                       one summary line per recorded firing
  audit-json                  the audit records as a JSON array
  audit clear                 drop recorded audit records
  why ID                      full lineage of firing ID: statement, SQL trigger,
                              delta query, pair counts, condition, actions
  update STMT                 run a view-DML statement against a published view:
                                INSERT NODE <xml> INTO view("v")/path
                                REPLACE NODE view("v")/path WITH <xml>
                                DELETE NODE view("v")/path [WHERE cond]
                              translated to base DML; rejected with a diagnostic
                              when ambiguous or side-effecting
  explain-update STMT         print the translated base DML and the injectivity /
                              safety verdict without executing
  update-strategy VIEW S      ambiguity strategy for VIEW: reject | first | all
  metrics-prom                counters + latency histograms in Prometheus
                              text exposition format (includes subscription
                              delivery metrics)
  checkpoint                  snapshot the database and truncate the WAL
  subscribe NAME AFTER EV ON PATH [WHERE C] [QUEUE n] [OVERFLOW p] [COALESCE on]
                              register a change-feed subscription over the view
  unsubscribe NAME            drop a subscription (and its trigger)
  subscriptions               per-subscription delivery counters and depths
  flush                       end the coalescing window: deliver pending
                              notifications to all sinks
  autoflush on|off            flush automatically after every command (on by
                              default; turn off to demo coalescing windows)
  serve PATH                  start the notification socket server on Unix
                              socket PATH (also: --socket)
  serve-http PORT             start the HTTP front door on 127.0.0.1:PORT
                              (also: --http; PORT 0 picks an ephemeral port)
  pump [MS]                   run the socket/HTTP server event loops for MS
                              milliseconds (default 100)
  quit                        exit|}

let notify_action fi =
  Printf.printf "! %s fired (%s)\n" fi.Runtime.fi_trigger
    (Database.string_of_event fi.Runtime.fi_event);
  Option.iter
    (fun n -> Printf.printf "  OLD: %s\n" (Xmlkit.Xml.to_string n))
    fi.Runtime.fi_old;
  Option.iter
    (fun n -> Printf.printf "  NEW: %s\n" (Xmlkit.Xml.to_string n))
    fi.Runtime.fi_new

let run strategy script data_dir trace audit socket http domains no_independence =
  let tuning =
    { Runtime.default_tuning with
      Runtime.domains;
      independence = not no_independence;
    }
  in
  let mgr, recovered_meta =
    match data_dir with
    | Some dir when Durability.Recovery.has_state ~data_dir:dir ->
      (* a previous session left durable state: crash-recover it *)
      let r =
        Runtime.reopen ~strategy ~tuning ~actions:[ ("notify", notify_action) ]
          ~data_dir:dir ()
      in
      Printf.printf
        "recovered %s: %d WAL record(s) replayed%s, %d view(s) and %d trigger(s) re-armed\n"
        dir r.Runtime.recovery.Durability.Recovery.wal_applied
        (match r.Runtime.recovery.Durability.Recovery.wal_status with
        | Durability.Wal.Clean -> ""
        | Durability.Wal.Torn { reason; _ } ->
          Printf.sprintf " (torn tail dropped: %s)" reason)
        r.Runtime.rearmed_views r.Runtime.rearmed_triggers;
      List.iter
        (fun e -> Printf.printf "recovery warning: %s\n" e)
        (r.Runtime.recovery.Durability.Recovery.errors @ r.Runtime.rearm_errors);
      (r.Runtime.runtime, Some r.Runtime.recovery.Durability.Recovery.meta)
    | _ ->
      let db = make_db () in
      let mgr = Runtime.create ~strategy ~tuning db in
      Runtime.define_view mgr ~name:"catalog" catalog_view;
      Runtime.register_action mgr ~name:"notify" notify_action;
      Option.iter
        (fun dir ->
          Runtime.attach_durability mgr ~data_dir:dir;
          Printf.printf "durability attached at %s\n" dir)
        data_dir;
      (mgr, None)
  in
  if trace then Runtime.set_tracing mgr true;
  if audit then Runtime.set_audit mgr true;
  let hub = Hub.attach mgr in
  (match recovered_meta with
  | None -> ()
  | Some meta ->
    List.iter (fun e -> Printf.printf "subscription warning: %s\n" e) (Hub.rearm hub ~meta);
    let n = List.length (Hub.subscription_names hub) in
    if n > 0 then Printf.printf "%d subscription(s) re-armed\n" n);
  let autoflush = ref true in
  (* echo delivered notifications in the shell, NDJSON as on the wire *)
  Hub.add_callback hub (fun n -> Printf.printf "~ %s\n" (Subscribe.Notification.to_ndjson n));
  Option.iter
    (fun path ->
      Hub.add_server hub (Server.create ~path ());
      Printf.printf "notification server listening on %s\n" path)
    socket;
  let api = ref None in
  let start_http port =
    let a = Api.create ~port ~mgr ~hub () in
    api := Some a;
    Printf.printf "http server listening on http://127.0.0.1:%d\n" (Api.port a)
  in
  Option.iter start_http http;
  (* at domains > 1 sink I/O moves off the firing thread too *)
  if domains > 1 then Hub.start_writer hub;
  (* pump the socket/HTTP event loops until they go idle (bounded) *)
  let pump ms =
    let step_once tmo =
      (match Hub.server hub with
      | None -> 0
      | Some srv -> Server.step ~timeout_ms:tmo srv)
      + (match !api with None -> 0 | Some a -> Api.step ~timeout_ms:tmo a)
    in
    if Hub.server hub <> None || Option.is_some !api then begin
      let budget = ref (max 1 (ms / 10)) in
      ignore (step_once (min ms 10));
      while !budget > 0 do
        decr budget;
        if step_once 10 = 0 then budget := 0
      done
    end
  in
  let flush_now ~verbose () =
    let n = Hub.flush hub in
    Hub.drain_writer hub;  (* callback echo / socket bytes before the pump *)
    pump 50;
    if verbose || n > 0 then Printf.printf "%d notification(s) delivered\n" n
  in
  let db = Runtime.database mgr in
  let schema_of name = Table.schema (Database.get_table db name) in
  let view = Xquery.Compile.view_of_string ~schema_of ~name:"catalog" catalog_view in
  let interactive = script = None in
  let input =
    match script with Some path -> open_in path | None -> stdin
  in
  Printf.printf
    "trigview shell — strategy %s; the Figure 2 database and Figure 3 catalog view are loaded.\n\
     Type 'help' for commands.\n"
    (Runtime.strategy_to_string strategy);
  let rec loop () =
    if interactive then (print_string "> "; flush stdout);
    match input_line input with
    | exception End_of_file -> ()
    | line ->
      let line = String.trim line in
      (try
         match String.split_on_char ' ' line with
         | [ "" ] -> ()
         | [ "help" ] -> print_endline help_text
         | [ "quit" ] | [ "exit" ] -> raise Exit
         | [ "view" ] ->
           print_string
             (Xmlkit.Xml.to_pretty_string
                (Xquery.Compile.materialize (Ra_eval.ctx_of_db db) view))
         | [ "sql" ] ->
           List.iter
             (fun (name, sql) -> Printf.printf "---- %s ----\n%s\n" name sql)
             (Runtime.generated_sql mgr)
         | [ "triggers" ] ->
           List.iter print_endline (Runtime.trigger_names mgr);
           Printf.printf "(%d SQL triggers underneath)\n" (Runtime.sql_trigger_count mgr)
         | "trigger" :: _ ->
           let text = String.sub line 8 (String.length line - 8) in
           Runtime.create_trigger mgr text;
           Printf.printf "installed; %d SQL triggers now registered\n"
             (Runtime.sql_trigger_count mgr)
         | [ "drop"; name ] -> Runtime.drop_trigger mgr name
         | [ "price"; vid; pid; amount ] ->
           let changed =
             Database.update_pk db ~table:"vendor"
               ~pk:[ Value.String vid; Value.String pid ]
               ~set:(fun row -> [| row.(0); row.(1); Value.Float (float_of_string amount) |])
           in
           if not changed then Printf.printf "no such vendor offer\n"
         | [ "add"; vid; pid; amount ] ->
           Database.insert_rows db ~table:"vendor"
             [ [| Value.String vid; Value.String pid; Value.Float (float_of_string amount) |] ]
         | [ "remove"; vid; pid ] ->
           if not (Database.delete_pk db ~table:"vendor" ~pk:[ Value.String vid; Value.String pid ])
           then Printf.printf "no such vendor offer\n"
         | "product" :: pid :: name :: mfr ->
           Database.insert_rows db ~table:"product"
             [ [| Value.String pid; Value.String name; Value.String (String.concat " " mfr) |] ]
         | [ "stats" ] -> print_string (Runtime.report mgr)
         | [ "stats-json" ] -> print_endline (Runtime.report_json mgr)
         | [ "explain" ] -> print_string (Runtime.explain mgr)
         | [ "explain-json" ] -> print_endline (Runtime.explain_json mgr)
         | [ "analyze" ] -> print_string (Runtime.analyze mgr)
         | [ "analyze-json" ] -> print_endline (Runtime.analyze_json mgr)
         | [ "tune" ] | [ "tune"; "all" ] -> print_string (Runtime.tune mgr)
         | [ "tune"; name ] -> print_string (Runtime.tune ~trigger:name mgr)
         | [ "trace"; "on" ] ->
           Runtime.set_tracing mgr true;
           Printf.printf "tracing on\n"
         | [ "trace"; "off" ] ->
           Runtime.set_tracing mgr false;
           Printf.printf "tracing off\n"
         | [ "trace" ] -> print_string (Runtime.trace_render mgr)
         | [ "trace"; "json" ] -> print_endline (Runtime.trace_json mgr)
         | [ "trace"; "chrome" ] -> print_endline (Runtime.trace_chrome_json mgr)
         | [ "trace"; "clear" ] -> Runtime.trace_clear mgr
         | [ "audit"; "on" ] ->
           Runtime.set_audit mgr true;
           Printf.printf "audit on\n"
         | [ "audit"; "off" ] ->
           Runtime.set_audit mgr false;
           Printf.printf "audit off\n"
         | [ "audit" ] -> print_string (Runtime.audit mgr)
         | [ "audit-json" ] -> print_endline (Runtime.audit_json mgr)
         | [ "audit"; "clear" ] -> Runtime.audit_clear mgr
         | [ "why"; id ] -> (
           match int_of_string_opt id with
           | Some id -> print_string (Runtime.why mgr id)
           | None -> Printf.printf "usage: why <firing id>\n")
         | [ "metrics-prom" ] ->
           print_string (Runtime.metrics_prometheus mgr);
           print_string (Hub.metrics_prometheus hub);
           Option.iter (fun a -> print_string (Api.metrics_prometheus a)) !api
         | "subscribe" :: _ ->
           Hub.subscribe hub (String.sub line 10 (String.length line - 10));
           Printf.printf "subscribed; %d SQL triggers now registered\n"
             (Runtime.sql_trigger_count mgr)
         | [ "unsubscribe"; name ] -> Hub.unsubscribe hub name
         | [ "subscriptions" ] -> print_string (Hub.report hub)
         | [ "flush" ] -> flush_now ~verbose:true ()
         | [ "autoflush"; "on" ] -> autoflush := true
         | [ "autoflush"; "off" ] -> autoflush := false
         | [ "serve"; path ] ->
           if Hub.server hub <> None then Printf.printf "server already running\n"
           else begin
             Hub.add_server hub (Server.create ~path ());
             Printf.printf "notification server listening on %s\n" path
           end
         | [ "serve-http"; port ] -> (
           if Option.is_some !api then Printf.printf "http server already running\n"
           else
             match int_of_string_opt port with
             | Some port when port >= 0 -> start_http port
             | _ -> Printf.printf "usage: serve-http <port>\n")
         | [ "pump" ] -> pump 100
         | [ "pump"; ms ] -> (
           match int_of_string_opt ms with
           | Some ms -> pump ms
           | None -> Printf.printf "usage: pump <milliseconds>\n")
         | [ "checkpoint" ] ->
           if Runtime.durability_attached mgr then begin
             Runtime.checkpoint mgr;
             Printf.printf "checkpoint written; WAL truncated\n"
           end
           else Printf.printf "no durability attached (start with --data-dir DIR)\n"
         | "update" :: verb :: _
           when List.mem (String.uppercase_ascii verb) [ "INSERT"; "REPLACE"; "DELETE" ] ->
           let text = String.sub line 7 (String.length line - 7) in
           let p = Viewupdate.execute mgr text in
           Printf.printf "%d base statement(s) executed\n" (List.length p.Viewupdate.p_ops);
           List.iter
             (fun op -> Printf.printf "  %s\n" (Viewupdate.base_op_render db op))
             p.Viewupdate.p_ops
         | "explain-update" :: _ when String.length line > 15 ->
           let text = String.sub line 15 (String.length line - 15) in
           print_string (Viewupdate.explain mgr text)
         | [ "update-strategy"; vname; s ] -> (
           let strat =
             match s with
             | "reject" -> Some Viewupdate.Reject_ambiguous
             | "first" -> Some Viewupdate.First_candidate
             | "all" -> Some Viewupdate.All_candidates
             | _ -> None
           in
           match strat with
           | Some strat ->
             Viewupdate.set_strategy mgr ~view:vname strat;
             Printf.printf "strategy for view %S: %s\n" vname
               (Viewupdate.strategy_to_string strat)
           | None -> Printf.printf "usage: update-strategy VIEW reject|first|all\n")
         | first :: _
           when List.mem
                  (String.uppercase_ascii first)
                  [ "SELECT"; "INSERT"; "UPDATE"; "DELETE"; "CREATE" ] -> (
           match Sql.exec db line with
           | Sql.Rows rel ->
             Printf.printf "%s\n" (String.concat " | " (Array.to_list rel.Ra_eval.cols));
             List.iter
               (fun row ->
                 Printf.printf "%s\n"
                   (String.concat " | "
                      (Array.to_list (Array.map Value.to_string row))))
               rel.Ra_eval.rows;
             Printf.printf "(%d rows)\n" (List.length rel.Ra_eval.rows)
           | Sql.Affected n -> Printf.printf "%d row(s) affected\n" n
           | Sql.Done -> Printf.printf "ok\n")
         | _ -> Printf.printf "unrecognized command (try 'help')\n"
       with
      | Exit -> raise Exit
      | Runtime.Error msg -> Printf.printf "error: %s\n" msg
      | Viewupdate.Error msg -> Printf.printf "view-update error: %s\n" msg
      | Viewupdate.Rejected d -> print_string (Viewupdate.render_diagnostic d)
      | Hub.Error msg -> Printf.printf "subscription error: %s\n" msg
      | Sql.Error msg -> Printf.printf "sql error: %s\n" msg
      | Invalid_argument msg -> Printf.printf "error: %s\n" msg
      | Failure msg -> Printf.printf "error: %s\n" msg);
      if !autoflush then flush_now ~verbose:false ();
      loop ()
  in
  (try loop () with Exit -> ());
  (* orderly shutdown: deliver what is pending, then make everything
     appended so far durable *)
  if Hub.subscription_names hub <> [] then flush_now ~verbose:false ();
  let srv = Hub.server hub in
  Hub.close_sinks hub;  (* stops the writer domain before closing channels *)
  Option.iter Server.stop srv;
  Option.iter Api.stop !api;
  Runtime.durability_sync mgr;
  if not interactive then close_in input

open Cmdliner

let strategy_arg =
  let strategy_conv =
    Arg.enum
      [ ("ungrouped", Runtime.Ungrouped); ("grouped", Runtime.Grouped);
        ("grouped-agg", Runtime.Grouped_agg); ("materialized", Runtime.Materialized);
      ]
  in
  Arg.(
    value
    & opt strategy_conv Runtime.Grouped_agg
    & info [ "strategy" ] ~doc:"Trigger processing strategy.")

let script_arg =
  Arg.(value & opt (some file) None & info [ "script" ] ~doc:"Read commands from $(docv).")

let data_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "data-dir" ]
        ~doc:
          "Durability directory: WAL segments and snapshots are kept in \
           $(docv).  If it already holds state from a previous session, the \
           database, views and XML triggers are crash-recovered from it.")

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Enable span tracing from the start (DML, trigger firings, plan \
           and fragment executions, tagging, dispatch); dump with the \
           $(b,trace) command.")

let audit_arg =
  Arg.(
    value & flag
    & info [ "audit" ]
        ~doc:
          "Enable the firing-provenance audit log from the start; inspect \
           with the $(b,audit) and $(b,why) commands.")

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ]
        ~doc:
          "Serve notifications over the Unix-domain socket $(docv): \
           subscriptions' notifications are published to connected clients \
           as length-prefixed NDJSON frames (see the $(b,subscribe) and \
           $(b,pump) commands).")

let http_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "http" ]
        ~doc:
          "Serve the HTTP front door on 127.0.0.1:$(docv): RQL view queries \
           ($(b,GET /views/NAME)), SQL and view-DML endpoints, SSE/long-poll \
           subscription feeds and the Prometheus $(b,/metrics) surface.  \
           Port 0 picks an ephemeral port (printed at startup).")

let domains_arg =
  Arg.(
    value
    & opt int Runtime.default_tuning.Runtime.domains
    & info [ "domains" ]
        ~doc:
          "Number of OCaml domains for trigger firing: independent trigger \
           groups' delta queries run in parallel, large subscriber fan-outs \
           are sharded, and sink I/O moves to a dedicated writer domain.  \
           1 (the default) is the sequential path; results are identical at \
           any value.  Also settable via TRIGVIEW_DOMAINS.")

let no_independence_arg =
  Arg.(
    value & flag
    & info [ "no-independence" ]
        ~doc:
          "Disable static query–update independence pruning: every (table, \
           event) bucket hit runs its delta plans even when the trigger's \
           relevance signature (column footprint + constant path \
           predicates) proves the statement cannot affect it.  \
           Semantics-preserving, only slower; the pruning's work is visible \
           as the $(b,independence_skips) counter in $(b,stats) and \
           $(b,metrics-prom).")

let cmd =
  Cmd.v
    (Cmd.info "trigview" ~doc:"Triggers over XML views of relational data — interactive shell")
    Term.(
      const run $ strategy_arg $ script_arg $ data_dir_arg $ trace_arg
      $ audit_arg $ socket_arg $ http_arg $ domains_arg $ no_independence_arg)

let () = exit (Cmd.eval cmd)
